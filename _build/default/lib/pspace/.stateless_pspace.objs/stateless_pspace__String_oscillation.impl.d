lib/pspace/string_oscillation.ml: Array Hashtbl List Random
