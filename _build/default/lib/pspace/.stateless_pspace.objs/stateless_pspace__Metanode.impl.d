lib/pspace/metanode.ml: Array List Option Stateful Stateless_core Stateless_graph
