lib/pspace/stateful.ml: Array Hashtbl List Option Stateless_core String_oscillation
