lib/pspace/string_oscillation.mli:
