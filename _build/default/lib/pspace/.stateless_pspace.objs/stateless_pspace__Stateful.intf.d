lib/pspace/stateful.mli: Stateless_core String_oscillation
