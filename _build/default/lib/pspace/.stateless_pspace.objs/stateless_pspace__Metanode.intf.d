lib/pspace/metanode.mli: Stateful Stateless_core
