(** The stateful → stateless metanode transform of Theorem B.14.

    Each node [i] of a stateful clique protocol A on [K_n] becomes a
    {e metanode} — a triple of stateless nodes [3i, 3i+1, 3i+2] — on
    [K_{3n}], over the label space Σ ∪ {ω}. A stateless node cannot read
    its own label, but it can read its two metanode siblings', and in a
    consistent configuration those carry exactly the metanode's label: the
    triple redundancy is what replaces the forbidden self-reading.

    Reaction (Definition B.18 ff): if the node's view is inconsistent (some
    other metanode not unanimous, or its own siblings disagreeing or
    showing ω) emit ω; if the view decodes to a labeling that is stable for
    A emit ω (collapsing every A-fixed-point to the unique all-ω fixed
    point); otherwise emit what A's reaction would. The transform preserves
    label (r-)stabilization in both directions (Theorems B.19–B.23). *)

type 'l t = {
  stateful : 'l Stateful.t;
  protocol : (unit, 'l option) Stateless_core.Protocol.t;
}

val make : 'l Stateful.t -> 'l t

val input : 'l t -> unit array

(** [lift t config] — the stateless configuration whose metanode [i]
    unanimously carries [config.(i)] (Claim B.19's initial labeling). *)
val lift : 'l t -> 'l array -> 'l option Stateless_core.Protocol.config

(** [lift_schedule t sched] activates whole metanodes whenever [sched]
    activates the underlying nodes (Claim B.19's σ̄). *)
val lift_schedule :
  'l t -> Stateless_core.Schedule.t -> Stateless_core.Schedule.t

(** The all-ω configuration — the canonical stable labeling of the
    transformed protocol. *)
val omega_config : 'l t -> 'l option Stateless_core.Protocol.config
