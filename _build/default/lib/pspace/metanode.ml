module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Schedule = Stateless_core.Schedule
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type 'l t = {
  stateful : 'l Stateful.t;
  protocol : (unit, 'l option) Protocol.t;
}

let make (a : 'l Stateful.t) =
  let n = a.Stateful.n in
  let big_n = 3 * n in
  let g = Builders.clique big_n in
  let space = Label.option a.Stateful.space in
  let encode = a.Stateful.space.Label.encode in
  let react u () incoming =
    (* Labels indexed by sender. *)
    let labels = Array.make big_n None in
    Array.iteri
      (fun k e -> labels.(Digraph.src g e) <- incoming.(k))
      (Digraph.in_edges g u);
    let my_meta = u / 3 in
    (* Consistent view (Definition B.18): every other metanode unanimous on
       a non-ω label; own siblings agreeing on a non-ω label. *)
    let decoded = Array.make n None in
    let consistent = ref true in
    for i = 0 to n - 1 do
      let members =
        if i = my_meta then
          List.filter (fun v -> v <> u) [ 3 * i; (3 * i) + 1; (3 * i) + 2 ]
        else [ 3 * i; (3 * i) + 1; (3 * i) + 2 ]
      in
      let values = List.map (fun v -> labels.(v)) members in
      match values with
      | first :: rest ->
          let unanimous =
            List.for_all
              (fun v ->
                match (v, first) with
                | Some a1, Some a2 -> encode a1 = encode a2
                | None, None -> true
                | _ -> false)
              rest
          in
          if not unanimous then consistent := false
          else begin
            match first with
            | None -> consistent := false
            | Some value -> decoded.(i) <- Some value
          end
      | [] -> assert false
    done;
    let out =
      if not !consistent then None
      else begin
        let config = Array.map Option.get decoded in
        if Stateful.is_stable a config then None
        else Some (a.Stateful.react my_meta config)
      end
    in
    (Array.map (fun _ -> out) (Digraph.out_edges g u), 0)
  in
  let protocol =
    {
      Protocol.name = a.Stateful.name ^ "-metanode";
      graph = g;
      space;
      react;
    }
  in
  { stateful = a; protocol }

let input t = Array.make (3 * t.stateful.Stateful.n) ()

let lift t config =
  let g = t.protocol.Protocol.graph in
  let out = Protocol.uniform_config t.protocol None in
  Array.iteri
    (fun i l ->
      List.iter
        (fun v ->
          Array.iter
            (fun e -> out.Protocol.labels.(e) <- Some l)
            (Digraph.out_edges g v))
        [ 3 * i; (3 * i) + 1; (3 * i) + 2 ])
    config;
  out

let lift_schedule (_ : 'l t) sched =
  {
    Schedule.name = sched.Schedule.name ^ "-metanode";
    period = sched.Schedule.period;
    active =
      (fun step ->
        List.concat_map
          (fun i -> [ 3 * i; (3 * i) + 1; (3 * i) + 2 ])
          (sched.Schedule.active step));
  }

let omega_config t = Protocol.uniform_config t.protocol None
