lib/lowerbound/fooling.ml: Array Bool List Stateless_graph
