lib/lowerbound/fooling.mli: Stateless_graph
