let bfs_distances g source =
  let n = Digraph.num_nodes g in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      (Digraph.successors g v)
  done;
  dist

let eccentricity g v =
  let dist = bfs_distances g v in
  if Array.exists (fun d -> d < 0) dist then None
  else Some (Array.fold_left max 0 dist)

let fold_eccentricities g ~combine =
  let n = Digraph.num_nodes g in
  let rec loop i acc =
    if i >= n then acc
    else
      match eccentricity g i with
      | None -> loop (i + 1) acc
      | Some e ->
          let acc = match acc with None -> Some e | Some a -> Some (combine a e) in
          loop (i + 1) acc
  in
  loop 0 None

let radius g = fold_eccentricities g ~combine:min

let diameter g =
  if
    Array.exists
      (fun i -> eccentricity g i = None)
      (Array.init (Digraph.num_nodes g) (fun i -> i))
  then None
  else fold_eccentricities g ~combine:max

(* Iterative Tarjan SCC: recursion replaced by an explicit stack so that the
   checker can decompose states-graphs with millions of nodes. *)
let scc_ids g =
  let n = Digraph.num_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, 0) call;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, child = Stack.pop call in
        let succs = Digraph.successors g v in
        if child < Array.length succs then begin
          Stack.push (v, child + 1) call;
          let u = succs.(child) in
          if index.(u) < 0 then begin
            index.(u) <- !next_index;
            lowlink.(u) <- !next_index;
            incr next_index;
            Stack.push u stack;
            on_stack.(u) <- true;
            Stack.push (u, 0) call
          end
          else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let u = Stack.pop stack in
              on_stack.(u) <- false;
              comp.(u) <- !next_comp;
              if u = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  (comp, !next_comp)

let scc g =
  let comp, count = scc_ids g in
  let buckets = Array.make count [] in
  for v = Digraph.num_nodes g - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let is_strongly_connected g =
  let _, count = scc_ids g in
  count = 1

let is_reachable g ~src ~dst = (bfs_distances g src).(dst) >= 0

let topological_sort g =
  let n = Digraph.num_nodes g in
  let indeg = Array.init n (fun i -> Digraph.in_degree g i) in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    Array.iter
      (fun u ->
        indeg.(u) <- indeg.(u) - 1;
        if indeg.(u) = 0 then Queue.add u queue)
      (Digraph.successors g v)
  done;
  if !seen = n then Some (List.rev !order) else None
