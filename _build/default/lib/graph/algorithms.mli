(** Graph algorithms backing the paper's structural arguments.

    Radius feeds the lower bound of Proposition 2.1; strong connectivity is a
    standing assumption of the model (Section 2); Tarjan's SCC decomposition
    is reused by the model checker to detect oscillations in the states-graph
    of Theorem 3.1. *)

(** [bfs_distances g src] is the array of hop distances from [src] following
    edge direction; unreachable nodes get [-1]. *)
val bfs_distances : Digraph.t -> int -> int array

(** [eccentricity g v] is the maximum distance from [v] to any node, or
    [None] if some node is unreachable from [v]. *)
val eccentricity : Digraph.t -> int -> int option

(** [radius g] is the minimum eccentricity over nodes that reach everything;
    [None] when no node reaches all others. This is the [r] of
    Proposition 2.1. *)
val radius : Digraph.t -> int option

(** [diameter g] is the maximum eccentricity; [None] if the graph is not
    strongly connected. *)
val diameter : Digraph.t -> int option

(** [is_strongly_connected g] — standing assumption of the model. *)
val is_strongly_connected : Digraph.t -> bool

(** [scc g] is the list of strongly connected components in reverse
    topological order (Tarjan); each component lists its member nodes. *)
val scc : Digraph.t -> int list list

(** [scc_ids g] maps each node to a component id; ids are assigned in
    reverse topological order of components. *)
val scc_ids : Digraph.t -> int array * int

(** [is_reachable g ~src ~dst]. *)
val is_reachable : Digraph.t -> src:int -> dst:int -> bool

(** [topological_sort g] for acyclic graphs; [None] if a cycle exists. *)
val topological_sort : Digraph.t -> int list option
