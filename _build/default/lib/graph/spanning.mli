(** Spanning in- and out-trees rooted at a node.

    Proposition 2.3's generic protocol needs, for a strongly connected graph,
    a tree [T1] of directed paths {e root -> i} (the broadcast tree) and a
    tree [T2] of directed paths {e i -> root} (the aggregation tree). Both are
    BFS trees: [T1] over the graph, [T2] over its reverse. *)

type tree = {
  root : int;
  parent : int array;  (** [parent.(root) = -1]; otherwise the tree parent. *)
  children : int list array;  (** children lists, inverse of [parent]. *)
  order : int list;  (** nodes in BFS order from the root. *)
}

(** [out_tree g root] spans [g] with edges directed away from [root]
    ([parent.(i)] is the BFS predecessor of [i], and the graph contains the
    edge [parent.(i) -> i]).
    @raise Invalid_argument if some node is unreachable from [root]. *)
val out_tree : Digraph.t -> int -> tree

(** [in_tree g root] spans [g] with edges directed towards [root]
    ([parent.(i)] is the next hop of [i] on a path to [root]; the graph
    contains the edge [i -> parent.(i)]).
    @raise Invalid_argument if some node cannot reach [root]. *)
val in_tree : Digraph.t -> int -> tree

(** [depth tree i] is the number of tree edges between [i] and the root. *)
val depth : tree -> int -> int
