lib/graph/spanning.ml: Array Digraph List Queue
