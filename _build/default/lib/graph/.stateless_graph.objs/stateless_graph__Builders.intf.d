lib/graph/builders.mli: Digraph
