lib/graph/builders.ml: Array Digraph Hashtbl List Random
