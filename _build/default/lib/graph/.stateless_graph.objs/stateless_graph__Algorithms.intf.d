lib/graph/algorithms.mli: Digraph
