lib/graph/spanning.mli: Digraph
