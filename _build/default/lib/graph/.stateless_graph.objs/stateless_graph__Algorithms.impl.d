lib/graph/algorithms.ml: Array Digraph List Queue Stack
