type tree = {
  root : int;
  parent : int array;
  children : int list array;
  order : int list;
}

let bfs_tree g root =
  let n = Digraph.num_nodes g in
  let parent = Array.make n (-2) in
  parent.(root) <- -1;
  let queue = Queue.create () in
  Queue.add root queue;
  let order = ref [ root ] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if parent.(u) = -2 then begin
          parent.(u) <- v;
          order := u :: !order;
          Queue.add u queue
        end)
      (Digraph.successors g v)
  done;
  if Array.exists (fun p -> p = -2) parent then
    invalid_arg "Spanning: graph is not strongly connected from the root";
  let children = Array.make n [] in
  Array.iteri
    (fun i p -> if p >= 0 then children.(p) <- i :: children.(p))
    parent;
  { root; parent; children; order = List.rev !order }

let out_tree g root = bfs_tree g root

let in_tree g root =
  (* BFS on the reverse graph: the parent of [i] is its next hop towards the
     root in the original graph. *)
  bfs_tree (Digraph.reverse g) root

let depth tree i =
  let rec walk i acc =
    if tree.parent.(i) < 0 then acc else walk tree.parent.(i) (acc + 1)
  in
  walk i 0
