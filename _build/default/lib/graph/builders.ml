let ring_uni n =
  if n < 2 then invalid_arg "Builders.ring_uni: need n >= 2";
  Digraph.create ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let ring_bi n =
  if n < 2 then invalid_arg "Builders.ring_bi: need n >= 2";
  let forward = List.init n (fun i -> (i, (i + 1) mod n)) in
  let backward = List.init n (fun i -> ((i + 1) mod n, i)) in
  if n = 2 then Digraph.create ~n [ (0, 1); (1, 0) ]
  else Digraph.create ~n (forward @ backward)

let clique n =
  if n < 2 then invalid_arg "Builders.clique: need n >= 2";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n !edges

let star n =
  if n < 2 then invalid_arg "Builders.star: need n >= 2";
  let spokes = List.init (n - 1) (fun k -> k + 1) in
  let edges = List.concat_map (fun s -> [ (0, s); (s, 0) ]) spokes in
  Digraph.create ~n edges

let path_bi n =
  if n < 2 then invalid_arg "Builders.path_bi: need n >= 2";
  let edges =
    List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ]))
  in
  Digraph.create ~n edges

let hypercube d =
  if d < 1 then invalid_arg "Builders.hypercube: need d >= 1";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = n - 1 downto 0 do
    for b = d - 1 downto 0 do
      let u = v lxor (1 lsl b) in
      edges := (v, u) :: !edges
    done
  done;
  Digraph.create ~n !edges

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus: need >= 3 x 3";
  let id r c = (((r mod rows) + rows) mod rows * cols)
               + (((c mod cols) + cols) mod cols) in
  let edges = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      let v = id r c in
      edges :=
        (v, id (r + 1) c) :: (v, id (r - 1) c) :: (v, id r (c + 1))
        :: (v, id r (c - 1)) :: !edges
    done
  done;
  Digraph.create ~n:(rows * cols) !edges

let grid rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Builders.grid: need at least two nodes";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      let v = id r c in
      if r + 1 < rows then edges := (v, id (r + 1) c) :: (id (r + 1) c, v) :: !edges;
      if c + 1 < cols then edges := (v, id r (c + 1)) :: (id r (c + 1), v) :: !edges
    done
  done;
  Digraph.create ~n:(rows * cols) !edges

let binary_tree depth =
  if depth < 1 then invalid_arg "Builders.binary_tree: need depth >= 1";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    if left < n then edges := (i, left) :: (left, i) :: !edges;
    if right < n then edges := (i, right) :: (right, i) :: !edges
  done;
  Digraph.create ~n !edges

let random_strongly_connected ~seed n ~extra =
  if n < 2 then invalid_arg "Builders.random_strongly_connected: need n >= 2";
  let state = Random.State.make [| seed |] in
  (* Random Hamiltonian cycle: a random permutation closed into a cycle. *)
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let table = Hashtbl.create (2 * (n + extra)) in
  for i = 0 to n - 1 do
    Hashtbl.replace table (perm.(i), perm.((i + 1) mod n)) ()
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let i = Random.State.int state n and j = Random.State.int state n in
    if i <> j && not (Hashtbl.mem table (i, j)) then begin
      Hashtbl.replace table (i, j) ();
      incr added
    end
  done;
  Digraph.create ~n (List.of_seq (Hashtbl.to_seq_keys table))

let de_bruijn k m =
  if k < 2 || m < 1 then invalid_arg "Builders.de_bruijn: need k >= 2, m >= 1";
  let rec pow acc e = if e = 0 then acc else pow (acc * k) (e - 1) in
  let n = pow 1 m in
  if n > 4096 then invalid_arg "Builders.de_bruijn: graph too large";
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for c = k - 1 downto 0 do
      let v = ((u * k) + c) mod n in
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  Digraph.create ~n (List.sort_uniq compare !edges)

let circulant n offsets =
  if n < 2 then invalid_arg "Builders.circulant: need n >= 2";
  let normalized =
    List.sort_uniq compare
      (List.map
         (fun o ->
           let o = ((o mod n) + n) mod n in
           if o = 0 then invalid_arg "Builders.circulant: zero offset";
           o)
         offsets)
  in
  if normalized = [] then invalid_arg "Builders.circulant: no offsets";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    List.iter (fun o -> edges := (i, (i + o) mod n) :: !edges) normalized
  done;
  Digraph.create ~n !edges

let erdos_renyi ~seed n ~p =
  if n < 2 then invalid_arg "Builders.erdos_renyi: need n >= 2";
  if p < 0.0 || p > 1.0 then invalid_arg "Builders.erdos_renyi: bad p";
  let state = Random.State.make [| seed |] in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j && Random.State.float state 1.0 < p then
        edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n !edges
