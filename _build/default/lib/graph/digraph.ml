type t = {
  n : int;
  edge_array : (int * int) array;
  out_edges : int array array;
  in_edges : int array array;
  index : (int * int, int) Hashtbl.t;
}

let create ~n edge_list =
  if n <= 0 then invalid_arg "Digraph.create: n must be positive";
  let edge_array = Array.of_list edge_list in
  let m = Array.length edge_array in
  let index = Hashtbl.create (2 * m + 1) in
  Array.iteri
    (fun e (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Digraph.create: edge (%d, %d) out of range" i j);
      if i = j then
        invalid_arg (Printf.sprintf "Digraph.create: self-loop at node %d" i);
      if Hashtbl.mem index (i, j) then
        invalid_arg
          (Printf.sprintf "Digraph.create: duplicate edge (%d, %d)" i j);
      Hashtbl.add index (i, j) e)
    edge_array;
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  Array.iter
    (fun (i, j) ->
      out_count.(i) <- out_count.(i) + 1;
      in_count.(j) <- in_count.(j) + 1)
    edge_array;
  let out_edges = Array.init n (fun i -> Array.make out_count.(i) 0)
  and in_edges = Array.init n (fun i -> Array.make in_count.(i) 0) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  Array.iteri
    (fun e (i, j) ->
      out_edges.(i).(out_fill.(i)) <- e;
      out_fill.(i) <- out_fill.(i) + 1;
      in_edges.(j).(in_fill.(j)) <- e;
      in_fill.(j) <- in_fill.(j) + 1)
    edge_array;
  { n; edge_array; out_edges; in_edges; index }

let num_nodes g = g.n
let num_edges g = Array.length g.edge_array
let edge g e = g.edge_array.(e)
let src g e = fst g.edge_array.(e)
let dst g e = snd g.edge_array.(e)
let out_edges g i = g.out_edges.(i)
let in_edges g i = g.in_edges.(i)
let successors g i = Array.map (fun e -> dst g e) g.out_edges.(i)
let predecessors g i = Array.map (fun e -> src g e) g.in_edges.(i)
let find_edge g ~src ~dst = Hashtbl.find_opt g.index (src, dst)
let mem_edge g ~src ~dst = Hashtbl.mem g.index (src, dst)
let out_degree g i = Array.length g.out_edges.(i)
let in_degree g i = Array.length g.in_edges.(i)

let max_degree g =
  let best = ref 0 in
  for i = 0 to g.n - 1 do
    best := max !best (max (out_degree g i) (in_degree g i))
  done;
  !best

let edges g = Array.copy g.edge_array

let reverse g =
  let swapped = Array.to_list (Array.map (fun (i, j) -> (j, i)) g.edge_array) in
  create ~n:g.n swapped

let is_symmetric g =
  Array.for_all (fun (i, j) -> mem_edge g ~src:j ~dst:i) g.edge_array

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (n=%d, m=%d)" g.n (num_edges g);
  Array.iteri (fun e (i, j) -> Format.fprintf ppf "@,  e%d: %d -> %d" e i j)
    g.edge_array;
  Format.fprintf ppf "@]"
