lib/snake/snake.ml: Array Bool Hashtbl List Printf Stateless_core Stateless_graph
