lib/snake/snake.mli: Stateless_core
