(** Space-bounded Turing machines with an explicit finite configuration
    space — the L/poly machines of Theorem 5.2.

    The proof of [L/poly ⊆ OS^u_log] only uses the machine through its
    finite configuration graph [Z] (machine state × work tape × work head ×
    input head), the partial step function [π : Z × {0,1} → Z] that consumes
    the input bit under the head, the initial configuration [z_0], and the
    acceptance predicate [F]. We represent machines exactly that way:
    configurations are integers in [0 .. configs-1]. Hard-wiring the advice
    string into [π] is how a per-input-length machine absorbs its advice, so
    this representation {e is} the nonuniform machine for length [n].

    {!protocol_of_machine} is the paper's construction verbatim: labels are
    quadruples [(z, b, c, o)] where [z] is a configuration, [b] carries the
    queried input bit, [c] is the reset counter, and [o] the latched output.
    Node 0 steps the machine and resets it every [|Z|] steps; node [i]
    answers the query when the input head of [z] points at [i]. On the
    synchronous unidirectional ring every edge carries an independent
    simulation token, so node 0 runs [n] simulations in parallel — exactly
    as in Appendix C. *)

type t = {
  name : string;
  n : int;  (** input length. *)
  configs : int;  (** |Z|. *)
  initial : int;  (** z_0. *)
  head : int -> int;  (** input-head position of a configuration. *)
  step : int -> bool -> int;  (** π; must be total. *)
  accepting : int -> bool;  (** F. *)
}

(** [run m x] iterates π for [configs] steps from [z_0] (by then a halting
    decider has reached its absorbing halt configuration) and reports
    acceptance. *)
val run : t -> bool array -> bool

(** [protocol_of_machine m] compiles [m] into a stateless protocol on the
    unidirectional [n]-ring whose outputs converge, from {e any} initial
    labeling, to 1 iff [m] accepts. The label type is
    [(z, (b, (c, o)))]. *)
val protocol_of_machine : t -> (bool, int * (bool * (int * bool))) Stateless_core.Protocol.t

(** An upper bound on the synchronous output-stabilization time of
    {!protocol_of_machine}: [(2 |Z| + 2) n] steps suffice from any initial
    labeling (one reset latency plus one full simulation, per token). *)
val convergence_bound : t -> int

(** {2 Concrete machines}

    All machines below are deciders: they reach an absorbing halting
    configuration within [|Z|] steps on every input. *)

(** [parity n] accepts iff the input has an odd number of ones. Sweeps the
    input once; [|Z| = 2 (n + 1)]. *)
val parity : int -> t

(** [majority n] accepts iff at least ⌈n/2⌉ ones; a sweep with a counter,
    [|Z| = O(n²)]. *)
val majority : int -> t

(** [mod_count n k] accepts iff the number of ones is ≡ 0 (mod k). *)
val mod_count : int -> int -> t

(** [first_equals_last n] accepts iff x_0 = x_{n-1} (two head trips). *)
val first_equals_last : int -> t

(** [with_advice n advice] accepts iff the input equals the advice string —
    a toy use of nonuniformity: the machine for length [n] hard-codes
    [advice] in its transition table. *)
val with_advice : int -> bool array -> t
