module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Builders = Stateless_graph.Builders

type t = {
  name : string;
  n : int;
  configs : int;
  initial : int;
  head : int -> int;
  step : int -> bool -> int;
  accepting : int -> bool;
}

let run m x =
  if Array.length x <> m.n then invalid_arg "Machine.run: wrong input length";
  let z = ref m.initial in
  for _ = 1 to m.configs do
    z := m.step !z x.(m.head !z)
  done;
  m.accepting !z

let protocol_of_machine m =
  let n = m.n in
  if n < 2 then invalid_arg "Machine.protocol_of_machine: need n >= 2";
  let g = Builders.ring_uni n in
  let space =
    Label.pair (Label.int m.configs)
      (Label.pair Label.bool (Label.pair (Label.int (m.configs + 1)) Label.bool))
  in
  let react i x incoming =
    let ((z, (b, (c, o))) : int * (bool * (int * bool))) = incoming.(0) in
    if i = 0 then
      if c < m.configs then
        let z' = m.step z b in
        ([| (z', (x, (c + 1, o))) |], if o then 1 else 0)
      else
        let verdict = m.accepting z in
        ([| (m.initial, (x, (0, verdict))) |], if verdict then 1 else 0)
    else if m.head z = i then ([| (z, (x, (c, o))) |], if o then 1 else 0)
    else ([| incoming.(0) |], if o then 1 else 0)
  in
  {
    Protocol.name = "machine-" ^ m.name;
    graph = g;
    space;
    react;
  }

let convergence_bound m = ((2 * m.configs) + 2) * m.n

(* ------------------------------------------------------------------ *)
(* Concrete machines                                                   *)
(* ------------------------------------------------------------------ *)

let clamp_head n pos = if pos >= n then 0 else pos

(* Sweep machines with a small per-position state: config = state * (n+1)
   positions; position n is the absorbing halt zone. *)

let parity n =
  if n < 1 then invalid_arg "Machine.parity: need n >= 1";
  let encode p pos = (p * (n + 1)) + pos in
  {
    name = "parity";
    n;
    configs = 2 * (n + 1);
    initial = encode 0 0;
    head = (fun z -> clamp_head n (z mod (n + 1)));
    step =
      (fun z b ->
        let p = z / (n + 1) and pos = z mod (n + 1) in
        if pos >= n then z
        else encode (if b then 1 - p else p) (pos + 1));
    accepting = (fun z -> z / (n + 1) = 1 && z mod (n + 1) = n);
  }

let majority n =
  if n < 1 then invalid_arg "Machine.majority: need n >= 1";
  let encode count pos = (count * (n + 1)) + pos in
  {
    name = "majority";
    n;
    configs = (n + 1) * (n + 1);
    initial = encode 0 0;
    head = (fun z -> clamp_head n (z mod (n + 1)));
    step =
      (fun z b ->
        let count = z / (n + 1) and pos = z mod (n + 1) in
        if pos >= n then z
        else
          (* Cap the count so that π is total even on garbage
             configurations injected by adversarial initial labels. *)
          encode (min n (if b then count + 1 else count)) (pos + 1));
    accepting =
      (fun z ->
        let count = z / (n + 1) and pos = z mod (n + 1) in
        pos = n && 2 * count >= n);
  }

let mod_count n k =
  if n < 1 || k < 1 then invalid_arg "Machine.mod_count: bad parameters";
  let encode c pos = (c * (n + 1)) + pos in
  {
    name = Printf.sprintf "mod%d" k;
    n;
    configs = k * (n + 1);
    initial = encode 0 0;
    head = (fun z -> clamp_head n (z mod (n + 1)));
    step =
      (fun z b ->
        let c = z / (n + 1) and pos = z mod (n + 1) in
        if pos >= n then z
        else encode (if b then (c + 1) mod k else c) (pos + 1));
    accepting = (fun z -> z / (n + 1) = 0 && z mod (n + 1) = n);
  }

let first_equals_last n =
  if n < 2 then invalid_arg "Machine.first_equals_last: need n >= 2";
  (* 0 = start (head at 0); 1 + f*n + pos = scanning towards the end
     remembering the first bit f (head at pos); 1+2n = accept; 2+2n =
     reject. *)
  let scan f pos = 1 + (f * n) + pos in
  let accept = 1 + (2 * n) and reject = 2 + (2 * n) in
  {
    name = "first=last";
    n;
    configs = 3 + (2 * n);
    initial = 0;
    head =
      (fun z ->
        if z = 0 then 0
        else if z = accept || z = reject then 0
        else (z - 1) mod n);
    step =
      (fun z b ->
        if z = accept || z = reject then z
        else if z = 0 then scan (if b then 1 else 0) (min 1 (n - 1))
        else
          let f = (z - 1) / n and pos = (z - 1) mod n in
          if pos = n - 1 then
            if (f = 1) = b then accept else reject
          else scan f (pos + 1));
    accepting = (fun z -> z = accept);
  }

let with_advice n advice =
  if Array.length advice <> n then
    invalid_arg "Machine.with_advice: advice length mismatch";
  (* pos in [0..n] while matching; n+1 = reject sink. *)
  let reject = n + 1 in
  {
    name = "advice-equality";
    n;
    configs = n + 2;
    initial = 0;
    head = (fun z -> clamp_head n (min z (n - 1)));
    step =
      (fun z b ->
        if z >= n then z
        else if b = advice.(z) then z + 1
        else reject);
    accepting = (fun z -> z = n);
  }
