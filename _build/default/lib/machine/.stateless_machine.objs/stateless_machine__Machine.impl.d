lib/machine/machine.ml: Array Printf Stateless_core Stateless_graph
