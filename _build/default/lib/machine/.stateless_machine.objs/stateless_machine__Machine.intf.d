lib/machine/machine.mli: Stateless_core
