(** Sequential simulation of unidirectional-ring protocols — the machine
    inside the proof of Theorem 5.2 ([OS^u_log ⊆ L/poly]).

    On a unidirectional ring a single label travels node to node, so the
    whole protocol can be simulated by the logspace loop from Appendix C:

    {v while t < n·|Σ| do (ℓ, y_j) ← δ_j(ℓ, x_j); j ← j+1 mod n done v}

    Lemma C.2(1) bounds the synchronous round complexity of any such
    protocol by [n·|Σ|]; the sequential machine therefore reads the
    stabilized output after [n·|Σ|] iterations using only one label of
    memory — which is how the proof fits the simulation in logspace. *)

(** [is_unidirectional_ring p] checks that [p]'s graph is exactly the ring
    [i -> i+1 mod n] (every node with in- and out-degree 1). *)
val is_unidirectional_ring : ('x, 'l) Protocol.t -> bool

(** [sequential_run p ~input ~start] runs the traveling-label loop for
    [n · |Σ|] iterations starting from label [start] on the edge into node
    0, and returns the last output produced by each node.
    @raise Invalid_argument if [p] is not a unidirectional ring. *)
val sequential_run : ('x, 'l) Protocol.t -> input:'x array -> start:'l -> int array

(** Lemma C.2(1): every output-stabilizing protocol on the unidirectional
    n-ring stabilizes within [n · |Σ|] synchronous rounds. *)
val round_complexity_bound : ('x, 'l) Protocol.t -> int option

(** [agrees_with_synchronous p ~input ~start ~max_steps] cross-checks the
    sequential machine against the synchronous engine: both must assign the
    same eventual outputs (the machine starts from the uniform labeling
    [start]). Returns [None] when the synchronous run does not converge
    within [max_steps]. *)
val agrees_with_synchronous :
  ('x, 'l) Protocol.t -> input:'x array -> start:'l -> max_steps:int -> bool option
