(** Transient-fault injection.

    Self-stabilization (Section 2.2) is exactly the promise that a system
    recovers from any transient corruption of its {e labels}, provided code
    and inputs stay intact. This module makes the promise testable: corrupt
    a configuration mid-run and measure re-convergence. *)

(** [corrupt p ~seed ~fraction config] returns a copy of [config] in which
    each edge label is independently replaced by a uniformly random label
    with probability [fraction] (outputs are preserved; they are
    re-derived by the protocol anyway). [fraction = 1.0] redraws
    everything. *)
val corrupt :
  ('x, 'l) Protocol.t ->
  seed:int ->
  fraction:float ->
  'l Protocol.config ->
  'l Protocol.config

(** [recovery_time p ~input ~schedule ~seed ~fraction ~max_steps] measures
    output stabilization, injects a corruption into the steady state
    reached after [max_steps] schedule steps, and measures output
    re-stabilization; [None] if either phase fails to converge. Phrased in
    terms of {e output} stabilization so it also applies to protocols whose
    labels never settle (e.g. anything clocked by the D-counter). The
    returned pair is [(first_convergence, recovery)]. *)
val recovery_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seed:int ->
  fraction:float ->
  max_steps:int ->
  (int * int) option

(** [recovers_to_same_outputs p ~input ~init ~schedule ~seed ~fraction
    ~max_steps] checks the full self-stabilization contract on one run: the
    outputs after recovery equal the outputs before the fault. *)
val recovers_to_same_outputs :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seed:int ->
  fraction:float ->
  max_steps:int ->
  bool option
