module Digraph = Stateless_graph.Digraph

type ('x, 'l) t = {
  name : string;
  graph : Digraph.t;
  space : 'l Label.t;
  react : int -> 'x -> 'l array -> 'l array * int;
}

type 'l config = { labels : 'l array; outputs : int array }

let num_nodes p = Digraph.num_nodes p.graph
let num_edges p = Digraph.num_edges p.graph
let label_complexity p = Label.complexity p.space

let uniform_config p l =
  { labels = Array.make (num_edges p) l; outputs = Array.make (num_nodes p) 0 }

let config_of_labels p labels =
  if Array.length labels <> num_edges p then
    invalid_arg "Protocol.config_of_labels: wrong number of edge labels";
  { labels = Array.copy labels; outputs = Array.make (num_nodes p) 0 }

let decode_config p code =
  let m = num_edges p in
  let card = p.space.Label.card in
  let labels = Array.make m (p.space.Label.decode 0) in
  let rest = ref code in
  for e = m - 1 downto 0 do
    labels.(e) <- p.space.Label.decode (!rest mod card);
    rest := !rest / card
  done;
  { labels; outputs = Array.make (num_nodes p) 0 }

let encode_config p config =
  Array.fold_left
    (fun acc l -> (acc * p.space.Label.card) + p.space.Label.encode l)
    0 config.labels

(* Keys pack each encoded label into as few bytes as needed; with outputs
   excluded two configurations share a key iff their labelings coincide. *)
let config_key p config =
  let card = p.space.Label.card in
  let bytes_per_label =
    if card <= 0x100 then 1 else if card <= 0x10000 then 2 else 4
  in
  let m = Array.length config.labels in
  let buf = Bytes.create (m * bytes_per_label) in
  for e = 0 to m - 1 do
    let v = ref (p.space.Label.encode config.labels.(e)) in
    for k = 0 to bytes_per_label - 1 do
      Bytes.unsafe_set buf ((e * bytes_per_label) + k)
        (Char.unsafe_chr (!v land 0xff));
      v := !v lsr 8
    done
  done;
  Bytes.unsafe_to_string buf

let incoming p config i =
  Array.map (fun e -> config.labels.(e)) (Digraph.in_edges p.graph i)

let outgoing p config i =
  Array.map (fun e -> config.labels.(e)) (Digraph.out_edges p.graph i)

let apply p ~input config i = p.react i input.(i) (incoming p config i)

let is_stable p ~input config =
  let n = num_nodes p in
  let rec check i =
    if i >= n then true
    else
      let out, _ = apply p ~input config i in
      let edges = Digraph.out_edges p.graph i in
      let rec same k =
        if k >= Array.length edges then true
        else if
          p.space.Label.encode out.(k)
          = p.space.Label.encode config.labels.(edges.(k))
        then same (k + 1)
        else false
      in
      if same 0 then check (i + 1) else false
  in
  check 0

let labelings_count p =
  let card = p.space.Label.card in
  let m = num_edges p in
  let rec loop acc k =
    if k = 0 then Some acc
    else if acc > max_int / card then None
    else loop (acc * card) (k - 1)
  in
  loop 1 m

let with_name p name = { p with name }

let pp_config p ppf config =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun e l ->
      let i, j = Digraph.edge p.graph e in
      Format.fprintf ppf "%d->%d: %a@," i j p.space.Label.pp l)
    config.labels;
  Format.fprintf ppf "outputs: ";
  Array.iter (fun y -> Format.fprintf ppf "%d " y) config.outputs;
  Format.fprintf ppf "@]"
