(** Finite label spaces Σ (Section 2.1).

    A label space is a finite set with an explicit bijection to
    [0 .. card - 1]. The bijection serves three purposes: it defines the
    paper's label complexity [L_n = log2 |Σ|] (Section 2.3), it lets the
    model checker enumerate every labeling in [Σ^E], and it gives compact
    hash keys for oscillation detection. *)

type 'a t = {
  card : int;  (** |Σ|; must be positive. *)
  encode : 'a -> int;  (** injective into [0 .. card-1]. *)
  decode : int -> 'a;  (** left inverse of [encode]. *)
  pp : Format.formatter -> 'a -> unit;
}

(** The paper's label complexity [L_n = log2 |Σ|], in bits. *)
val complexity : 'a t -> float

(** Number of bits needed to write a label, [ceil (log2 card)]. *)
val bit_length : 'a t -> int

(** Σ = \{false, true\}, the 1-bit space of Example 1 and Theorem 4.1. *)
val bool : bool t

(** [int n] is Σ = \{0, ..., n-1\}, e.g. the [q]-value space of
    Lemma C.2's extremal protocol. *)
val int : int -> int t

(** [pair a b] is the product space with lexicographic encoding. *)
val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** [vector a k] is the [k]-fold power of [a], encoded mixed-radix.
    Arrays must have length exactly [k]. *)
val vector : 'a t -> int -> 'a array t

(** [bool_vector k] is \{0,1\}^k — the label space of Proposition 2.3's
    generic protocol (with [k = n + 1]). *)
val bool_vector : int -> bool array t

(** [enum values ~pp ~equal] builds a space from an explicit value list.
    Encoding is the list position; [decode] is O(1) via an array. *)
val enum : 'a list -> pp:(Format.formatter -> 'a -> unit) ->
  equal:('a -> 'a -> bool) -> 'a t

(** [option a] adjoins a distinguished extra value ([None], encoded 0) —
    e.g. the ω label of the metanode construction in Theorem B.14. *)
val option : 'a t -> 'a option t

(** [iso ~fwd ~bwd ~pp a] transports a space along a bijection. *)
val iso : fwd:('a -> 'b) -> bwd:('b -> 'a) ->
  pp:(Format.formatter -> 'b -> unit) -> 'a t -> 'b t

(** [check_roundtrip t] verifies [encode (decode i) = i] for all
    [i < card]; used by property tests. *)
val check_roundtrip : 'a t -> bool
