(** Example 1 of the paper: the tightness witness for Theorem 3.1.

    A protocol over the clique [K_n] with Σ = \{0,1\}: a node labels all its
    outgoing edges 0 when every incoming edge is labeled 0, and 1 otherwise.
    Both all-zeros and all-ones are stable labelings, so by Theorem 3.1 the
    protocol is not label (n-1)-stabilizing; the paper shows it {e is}
    r-stabilizing for every [r < n - 1].

    Inputs are irrelevant ([unit]). A node's output reports the label it is
    currently sending (0 or 1). *)

val make : int -> (unit, bool) Protocol.t

(** The all-[unit] input vector, for convenience. *)
val input : int -> unit array

(** The (n-1)-fair schedule from the paper's oscillation argument: activate
    the pairs \{0,1\}, \{1,2\}, ..., \{n-1,0\} cyclically. Combined with
    {!oscillation_init} the labeling rotates forever. *)
val oscillation_schedule : int -> Schedule.t

(** The initial configuration where node 0 sends 1 on all its outgoing edges
    and every other edge carries 0: exactly one "hot" node. *)
val oscillation_init : (unit, bool) Protocol.t -> bool Protocol.config
