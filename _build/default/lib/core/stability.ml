let iter_labelings p f =
  match Protocol.labelings_count p with
  | None -> invalid_arg "Stability.iter_labelings: labeling space too large"
  | Some count ->
      let m = Protocol.num_edges p in
      let space = p.Protocol.space in
      let labels = Array.make m (space.Label.decode 0) in
      let digits = Array.make m 0 in
      let rec next () =
        f labels;
        (* Mixed-radix increment with edge m-1 as the least significant
           digit. *)
        let rec carry e =
          if e < 0 then false
          else if digits.(e) + 1 < space.Label.card then begin
            digits.(e) <- digits.(e) + 1;
            labels.(e) <- space.Label.decode digits.(e);
            true
          end
          else begin
            digits.(e) <- 0;
            labels.(e) <- space.Label.decode 0;
            carry (e - 1)
          end
        in
        if carry (m - 1) then next ()
      in
      if count > 0 then next ()

let fold_stable p ~input ~init ~f ~stop =
  let acc = ref init in
  let exception Done in
  (try
     iter_labelings p (fun labels ->
         let config = Protocol.config_of_labels p labels in
         if Protocol.is_stable p ~input config then begin
           acc := f !acc labels;
           if stop !acc then raise Done
         end)
   with Done -> ());
  !acc

let stable_labelings p ~input =
  List.rev
    (fold_stable p ~input ~init:[]
       ~f:(fun acc labels -> Array.copy labels :: acc)
       ~stop:(fun _ -> false))

let count_stable_labelings p ~input =
  fold_stable p ~input ~init:0 ~f:(fun acc _ -> acc + 1) ~stop:(fun _ -> false)

let has_multiple_stable_labelings p ~input =
  fold_stable p ~input ~init:0 ~f:(fun acc _ -> acc + 1) ~stop:(fun c -> c >= 2)
  >= 2
