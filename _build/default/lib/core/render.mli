(** ASCII rendering of protocol runs, for examples and debugging.

    A run is shown as a grid: one row per time step, one column per node
    (outputs or outgoing labels) or per edge (labels). Label values are
    shown through their encoding; single-bit values render as [.] and
    [#]. *)

(** [outputs_over_time p ~input ~init ~schedule ~steps] renders each node's
    output per step (row 0 is the state after the first step). *)
val outputs_over_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  string

(** [labels_over_time p ~input ~init ~schedule ~steps] renders each edge's
    label encoding per step, with a header naming the edges. *)
val labels_over_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  string

(** [node_bits_over_time p ~input ~init ~schedule ~steps] — for protocols
    that send the same boolean to all neighbours: one [./#] column per
    node, reading its first outgoing label. *)
val node_bits_over_time :
  ('x, bool) Protocol.t ->
  input:'x array ->
  init:bool Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  string
