module Digraph = Stateless_graph.Digraph
module Algorithms = Stateless_graph.Algorithms
module Spanning = Stateless_graph.Spanning

let root = 0

let label_bits g = Digraph.num_nodes g + 1
let round_bound g = 2 * Digraph.num_nodes g

let make ?name g f =
  if not (Algorithms.is_strongly_connected g) then
    invalid_arg "Generic.make: graph must be strongly connected";
  let n = Digraph.num_nodes g in
  let t1 = Spanning.out_tree g root and t2 = Spanning.in_tree g root in
  let zero_label () = Array.make (n + 1) false in
  (* Membership tables: is [j] a T1-child of [i]? is [j] the T2-parent? *)
  let t1_child = Array.make_matrix n n false in
  Array.iteri
    (fun child parent -> if parent >= 0 then t1_child.(parent).(child) <- true)
    t1.Spanning.parent;
  let t2_parent = t2.Spanning.parent in
  let t2_child = Array.make_matrix n n false in
  Array.iteri
    (fun child parent -> if parent >= 0 then t2_child.(parent).(child) <- true)
    t2_parent;
  (* OR of the z-components arriving from T2-children, with own input mixed
     in at coordinate [i] (the paper's w_i ∨ OR(z_{c2(i)})). *)
  let aggregate g i x incoming =
    let agg = Array.make n false in
    agg.(i) <- x;
    let in_edges = Digraph.in_edges g i in
    Array.iteri
      (fun k e ->
        let u = Digraph.src g e in
        if t2_child.(i).(u) then
          for c = 0 to n - 1 do
            if incoming.(k).(c) then agg.(c) <- true
          done)
      in_edges;
    agg
  in
  let react i x incoming =
    let in_edges = Digraph.in_edges g i and out_edges = Digraph.out_edges g i in
    let agg = aggregate g i x incoming in
    if i = root then begin
      let y = f agg in
      let out =
        Array.map
          (fun e ->
            let j = Digraph.dst g e in
            if t1_child.(root).(j) then begin
              let l = zero_label () in
              l.(n) <- y;
              l
            end
            else zero_label ())
          out_edges
      in
      (out, if y then 1 else 0)
    end
    else begin
      (* The broadcast bit heard from the T1-parent. *)
      let b_in = ref false in
      Array.iteri
        (fun k e ->
          if Digraph.src g e = t1.Spanning.parent.(i) then
            b_in := incoming.(k).(n))
        in_edges;
      let b = !b_in in
      let out =
        Array.map
          (fun e ->
            let j = Digraph.dst g e in
            let is_t2_parent = j = t2_parent.(i)
            and is_t1_child = t1_child.(i).(j) in
            match (is_t2_parent, is_t1_child) with
            | true, true ->
                let l = Array.make (n + 1) false in
                Array.blit agg 0 l 0 n;
                l.(n) <- b;
                l
            | false, true ->
                let l = zero_label () in
                l.(n) <- b;
                l
            | true, false ->
                let l = Array.make (n + 1) false in
                Array.blit agg 0 l 0 n;
                l
            | false, false -> zero_label ())
          out_edges
      in
      (out, if b then 1 else 0)
    end
  in
  let name =
    match name with Some s -> s | None -> "generic-prop-2.3"
  in
  {
    Protocol.name;
    graph = g;
    space = Label.bool_vector (n + 1);
    react;
  }
