module Builders = Stateless_graph.Builders

let make ~n ~q =
  if n < 2 then invalid_arg "Extremal.make: need n >= 2";
  if q < 2 then invalid_arg "Extremal.make: need q >= 2";
  let g = Builders.ring_uni n in
  let react i () incoming =
    (* Unidirectional ring: exactly one incoming edge. *)
    let v = incoming.(0) in
    if v = q - 1 then ([| q - 1 |], 1)
    else if i = 0 then ([| v + 1 |], 0)
    else ([| v |], 0)
  in
  {
    Protocol.name = Printf.sprintf "extremal-ring-%d-q%d" n q;
    graph = g;
    space = Label.int q;
    react;
  }

let input n = Array.make n ()
let slow_init p = Protocol.uniform_config p 0
let predicted_rounds ~n ~q = n * (q - 1)
let upper_bound ~n ~q = n * q
