let corrupt p ~seed ~fraction config =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault.corrupt: fraction must be in [0, 1]";
  let state = Random.State.make [| seed |] in
  let card = p.Protocol.space.Label.card in
  let labels =
    Array.map
      (fun l ->
        if Random.State.float state 1.0 < fraction then
          p.Protocol.space.Label.decode (Random.State.int state card)
        else l)
      config.Protocol.labels
  in
  { Protocol.labels; outputs = Array.copy config.Protocol.outputs }

(* Both measurements are phrased in terms of output stabilization so that
   they apply to output-stabilizing protocols whose labels never settle
   (e.g. anything clocked by the D-counter). The configuration that gets
   corrupted is the steady state after [max_steps] schedule steps. *)

let recovery_time p ~input ~init ~schedule ~seed ~fraction ~max_steps =
  match
    Engine.output_stabilization_time p ~input ~init ~schedule ~max_steps
  with
  | None -> None
  | Some first -> (
      let steady = Engine.run p ~input ~init ~schedule ~steps:max_steps in
      let damaged = corrupt p ~seed ~fraction steady in
      match
        Engine.output_stabilization_time p ~input ~init:damaged ~schedule
          ~max_steps
      with
      | Some recovery -> Some (first, recovery)
      | None -> None)

let recovers_to_same_outputs p ~input ~init ~schedule ~seed ~fraction
    ~max_steps =
  match
    Engine.outputs_after_convergence p ~input ~init ~schedule ~max_steps
  with
  | None -> None
  | Some before -> (
      let steady = Engine.run p ~input ~init ~schedule ~steps:max_steps in
      let damaged = corrupt p ~seed ~fraction steady in
      match
        Engine.outputs_after_convergence p ~input ~init:damaged ~schedule
          ~max_steps
      with
      | Some after -> Some (Array.for_all2 ( = ) before after)
      | None -> None)
