(** Stable labelings (Section 3).

    A stable labeling of a protocol is a labeling that is a fixed point of
    every reaction function. Theorem 3.1 proves that the mere existence of
    two distinct stable labelings rules out label (n-1)-stabilization; these
    helpers enumerate stable labelings on small instances so the theorem's
    hypothesis can be established mechanically. *)

(** [iter_labelings p f] enumerates every labeling of [p]'s graph (the full
    [Σ^E]) and calls [f] on each, reusing a single buffer; [f] must not
    retain the array.
    @raise Invalid_argument when [|Σ|^|E|] overflows an [int]. *)
val iter_labelings : ('x, 'l) Protocol.t -> ('l array -> unit) -> unit

(** [stable_labelings p ~input] lists every stable labeling, as edge-indexed
    label arrays.
    @raise Invalid_argument when the space is too large to enumerate. *)
val stable_labelings : ('x, 'l) Protocol.t -> input:'x array -> 'l array list

(** [count_stable_labelings p ~input]. *)
val count_stable_labelings : ('x, 'l) Protocol.t -> input:'x array -> int

(** [has_multiple_stable_labelings p ~input] — the hypothesis of
    Theorem 3.1. Stops enumerating after finding two. *)
val has_multiple_stable_labelings : ('x, 'l) Protocol.t -> input:'x array -> bool
