(** The generic label-stabilizing protocol of Proposition 2.3.

    For any strongly connected directed graph [G] on [n] nodes and any
    Boolean function [f : {0,1}^n -> {0,1}], the proposition exhibits a
    label-stabilizing protocol computing [f] with label complexity
    [L_n = n + 1] and round complexity [R_n <= 2n].

    The construction: fix two BFS spanning trees rooted at node 0 — [T1]
    with paths root→i (broadcast) and [T2] with paths i→root (aggregation).
    A label is a pair [(z, b)] of an input-summary vector [z ∈ {0,1}^n] and
    an output bit [b]. Every node forwards, towards the root along [T2], the
    coordinatewise OR of its children's summaries with its own input placed
    at coordinate [i]; the root applies [f] and floods the answer bit down
    [T1]. Labels off the two trees are identically zero, so the labeling is
    stable once the flows settle. *)

(** [make ?name graph f] builds the protocol. Inputs are the nodes' private
    bits; the label type is the [(z, b)] vector packed as a [bool array] of
    length [n + 1] (coordinates [0 .. n-1] are [z], coordinate [n] is [b]).
    @raise Invalid_argument if [graph] is not strongly connected. *)
val make :
  ?name:string ->
  Stateless_graph.Digraph.t ->
  (bool array -> bool) ->
  (bool, bool array) Protocol.t

(** The paper's label complexity for this protocol: [n + 1] bits. *)
val label_bits : Stateless_graph.Digraph.t -> int

(** The paper's round-complexity bound: [2 n]. *)
val round_bound : Stateless_graph.Digraph.t -> int
