module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type ('x, 'l) t = {
  name : string;
  graph : Digraph.t;
  space : 'l Label.t;
  react : Random.State.t -> int -> 'x -> 'l array -> 'l array * int;
}

let of_protocol p =
  {
    name = p.Protocol.name ^ "-det";
    graph = p.Protocol.graph;
    space = p.Protocol.space;
    react = (fun _rng i x incoming -> p.Protocol.react i x incoming);
  }

let step t ~rng ~input config ~active =
  let reactions =
    List.map
      (fun i ->
        let incoming =
          Array.map
            (fun e -> config.Protocol.labels.(e))
            (Digraph.in_edges t.graph i)
        in
        (i, t.react rng i input.(i) incoming))
      active
  in
  let labels = Array.copy config.Protocol.labels in
  let outputs = Array.copy config.Protocol.outputs in
  List.iter
    (fun (i, (out, y)) ->
      Array.iteri
        (fun k e -> labels.(e) <- out.(k))
        (Digraph.out_edges t.graph i);
      outputs.(i) <- y)
    reactions;
  { Protocol.labels; outputs }

let key t config =
  Array.map t.space.Label.encode config.Protocol.labels

let time_to_quiescence t ~input ~init ~schedule ~seed ~quiet ~max_steps =
  let rng = Random.State.make [| seed |] in
  let rec loop step_idx config unchanged last_key =
    if unchanged >= quiet then Some (step_idx - unchanged)
    else if step_idx >= max_steps then None
    else begin
      let next =
        step t ~rng ~input config ~active:(schedule.Schedule.active step_idx)
      in
      let next_key = key t next in
      if next_key = last_key then loop (step_idx + 1) next (unchanged + 1) next_key
      else loop (step_idx + 1) next 0 next_key
    end
  in
  loop 0 init 0 (key t init)

let convergence_rate t ~input ~init ~schedule ~seeds ~quiet ~max_steps =
  List.fold_left
    (fun (converged, total, worst) seed ->
      match
        time_to_quiescence t ~input ~init ~schedule ~seed ~quiet ~max_steps
      with
      | Some time -> (converged + 1, total + 1, max worst time)
      | None -> (converged, total + 1, worst))
    (0, 0, 0) seeds

let lazy_example1 n ~ignite =
  if n < 3 then invalid_arg "Randomized.lazy_example1: need n >= 3";
  if ignite <= 0.0 || ignite >= 1.0 then
    invalid_arg "Randomized.lazy_example1: ignite must be in (0, 1)";
  let g = Builders.clique n in
  let react rng i () incoming =
    let hot =
      Array.exists Fun.id incoming || Random.State.float rng 1.0 < ignite
    in
    ( Array.map (fun _ -> hot) (Digraph.out_edges g i),
      if hot then 1 else 0 )
  in
  {
    name = Printf.sprintf "lazy-example1-%d" n;
    graph = g;
    space = Label.bool;
    react;
  }
