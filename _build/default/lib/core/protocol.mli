(** Stateless protocols A = (Σ, δ) — Section 2.1 of the paper.

    A protocol fixes a strongly connected directed graph, a finite label
    space Σ, and one deterministic reaction function per node

    {v δ_i : Σ^{-i} × X → Σ^{+i} × Y v}

    mapping the labels on [i]'s incoming edges and [i]'s private input to new
    labels on [i]'s outgoing edges and an output value. Nodes have no other
    state: everything a node ever does is determined by its current incoming
    labels and its input.

    Inputs are polymorphic ['x] (the paper's X, usually bits) and outputs are
    [int] (the paper's \{0,1\}, generalized so that strategies and routing
    choices can be reported as outputs too). *)

type ('x, 'l) t = {
  name : string;
  graph : Stateless_graph.Digraph.t;
  space : 'l Label.t;  (** Σ. *)
  react : int -> 'x -> 'l array -> 'l array * int;
      (** [react i x_i incoming] receives the labels of [i]'s incoming edges,
          in the order of [Digraph.in_edges graph i], and returns the labels
          for [i]'s outgoing edges, in the order of
          [Digraph.out_edges graph i], together with [i]'s output value. *)
}

(** A configuration: one label per edge (indexed by edge id) plus the last
    output written by each node. *)
type 'l config = { labels : 'l array; outputs : int array }

val num_nodes : ('x, 'l) t -> int
val num_edges : ('x, 'l) t -> int

(** The paper's label complexity [L_n = log2 |Σ|]. *)
val label_complexity : ('x, 'l) t -> float

(** [uniform_config p l] is the configuration with every edge labeled [l]
    and all outputs 0. *)
val uniform_config : ('x, 'l) t -> 'l -> 'l config

(** [config_of_labels p labels] wraps an edge-indexed label array (copied)
    with zero outputs.
    @raise Invalid_argument on a length mismatch. *)
val config_of_labels : ('x, 'l) t -> 'l array -> 'l config

(** [decode_config p code] decodes a mixed-radix integer into a labeling
    (edge 0 is the most significant digit). Only usable when
    [|Σ|^|E|] fits in an [int]. *)
val decode_config : ('x, 'l) t -> int -> 'l config

(** [encode_config p config] is the inverse of {!decode_config} (outputs are
    not encoded). *)
val encode_config : ('x, 'l) t -> 'l config -> int

(** [config_key p config] is a compact hashable key for the labeling part of
    a configuration (outputs excluded, matching the paper's notion of label
    convergence). *)
val config_key : ('x, 'l) t -> 'l config -> string

(** [apply p ~input config i] evaluates node [i]'s reaction function against
    [config], returning its fresh outgoing labels and output. *)
val apply : ('x, 'l) t -> input:'x array -> 'l config -> int -> 'l array * int

(** [incoming p config i] extracts the labels of [i]'s incoming edges. *)
val incoming : ('x, 'l) t -> 'l config -> int -> 'l array

(** [outgoing p config i] extracts the labels of [i]'s outgoing edges. *)
val outgoing : ('x, 'l) t -> 'l config -> int -> 'l array

(** [is_stable p ~input config] holds when the labeling is a stable labeling
    (Section 3): a fixed point of every reaction function. *)
val is_stable : ('x, 'l) t -> input:'x array -> 'l config -> bool

(** [labelings_count p] is [|Σ|^|E|] if it fits in an [int], else [None].
    This is the configuration-count bound of Proposition 2.2. *)
val labelings_count : ('x, 'l) t -> int option

(** [with_name p name]. *)
val with_name : ('x, 'l) t -> string -> ('x, 'l) t

(** [pp_config p ppf config] prints the labeling edge by edge. *)
val pp_config : ('x, 'l) t -> Format.formatter -> 'l config -> unit
