(** "Almost stateless" computation — future-work direction (2) of
    Section 7: processors with a bounded private memory alongside the label
    mechanism.

    A memory protocol equips each node with a finite state space; the
    reaction maps (own state, input, incoming labels) to (new state,
    outgoing labels, output). Stateless protocols are the special case of a
    one-point state space ({!of_protocol}), and one extra bit is already a
    strict separation: under a synchronous schedule a stateless node whose
    incoming labels have stopped changing must eventually output a constant,
    whereas {!blinker}'s outputs alternate forever ({!val:blinker} +
    [test_memory] demonstrate this).

    On cliques, memory protocols correspond to the paper's stateful
    protocols (Theorem B.14 removes the memory at the cost of tripling the
    nodes); this module provides the general-graph model and engine. *)

type ('x, 'l, 's) t = {
  name : string;
  graph : Stateless_graph.Digraph.t;
  space : 'l Label.t;
  states : 's Label.t;
  initial_state : int -> 's;
  react : int -> 'x -> 's -> 'l array -> 's * 'l array * int;
}

type ('l, 's) config = {
  labels : 'l array;
  states : 's array;
  outputs : int array;
}

(** Bits of private memory per node, [⌈log2 |states|⌉] — direction (2)
    asks what a constant number of these buys. *)
val memory_bits : ('x, 'l, 's) t -> int

(** [of_protocol p] — stateless protocols are memory protocols with zero
    memory bits. *)
val of_protocol : ('x, 'l) Protocol.t -> ('x, 'l, unit) t

(** [initial_config t l0] — every edge labeled [l0], states from
    [initial_state]. *)
val initial_config : ('x, 'l, 's) t -> 'l -> ('l, 's) config

(** [step t ~input config ~active] — scheduled nodes react atomically
    (their state update included). *)
val step :
  ('x, 'l, 's) t ->
  input:'x array ->
  ('l, 's) config ->
  active:int list ->
  ('l, 's) config

val run :
  ('x, 'l, 's) t ->
  input:'x array ->
  init:('l, 's) config ->
  schedule:Schedule.t ->
  steps:int ->
  ('l, 's) config

(** Exact outcome analysis by state recurrence, as in
    [Engine.run_until_stable]; the recurrence key includes both labels and
    states. Stability means labels {e and} states are a fixed point of
    every reaction. *)
val run_until_stable :
  ('x, 'l, 's) t ->
  input:'x array ->
  init:('l, 's) config ->
  schedule:Schedule.t ->
  max_steps:int ->
  [ `Stabilized of int | `Oscillating of int * int | `Exhausted ]

(** [blinker ()] — two nodes; node 0 carries one memory bit that it flips
    on every activation and outputs; labels are constant. No stateless
    protocol has this output behaviour once its labels are constant. *)
val blinker : unit -> (unit, bool, bool) t

(** [mod_counter k] — a single-bit-labeled 2-ring where node 0 counts its
    own activations mod [k] in its memory (log2 k bits) and outputs the
    count; the stateless equivalent would need the D-counter machinery of
    Claim 5.6. *)
val mod_counter : int -> (unit, bool, int) t
