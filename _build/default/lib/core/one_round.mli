(** The well-connected baseline of Section 5's opening remark: on the
    clique, {e every} Boolean function is computable with 1-bit labels
    within one round (each node broadcasts its input bit and evaluates [f]
    on what it hears), and similarly on the star (spokes send their bits
    up, the hub answers). These are the protocols that make the paper study
    poorly-connected topologies instead: rings are where label complexity
    becomes interesting. *)

(** [clique n f] — label-stabilizing, [L = 1], outputs correct after one
    synchronous round. *)
val clique : int -> (bool array -> bool) -> (bool, bool) Protocol.t

(** [star n f] — hub is node 0; [L = 1], outputs correct after two
    synchronous rounds (one up, one down; the hub is right after one). *)
val star : int -> (bool array -> bool) -> (bool, bool) Protocol.t
