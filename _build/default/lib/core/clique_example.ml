module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

let make n =
  if n < 3 then invalid_arg "Clique_example.make: need n >= 3";
  let g = Builders.clique n in
  let react i () incoming =
    let hot = Array.exists (fun b -> b) incoming in
    let out = Array.map (fun _ -> hot) (Digraph.out_edges g i) in
    (out, if hot then 1 else 0)
  in
  {
    Protocol.name = Printf.sprintf "example1-clique-%d" n;
    graph = g;
    space = Label.bool;
    react;
  }

let input n = Array.make n ()

let oscillation_schedule n =
  Schedule.block_rounds (List.init n (fun i -> [ i; (i + 1) mod n ]))

let oscillation_init p =
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  Array.iter
    (fun e -> config.Protocol.labels.(e) <- true)
    (Digraph.out_edges g 0);
  config
