type 'a t = {
  card : int;
  encode : 'a -> int;
  decode : int -> 'a;
  pp : Format.formatter -> 'a -> unit;
}

let complexity t = log (float_of_int t.card) /. log 2.0

let bit_length t =
  let rec loop bits capacity =
    if capacity >= t.card then bits else loop (bits + 1) (capacity * 2)
  in
  loop 0 1

let bool =
  {
    card = 2;
    encode = (fun b -> if b then 1 else 0);
    decode = (fun i -> i <> 0);
    pp = Format.pp_print_bool;
  }

let int n =
  if n <= 0 then invalid_arg "Label.int: cardinality must be positive";
  {
    card = n;
    encode = (fun v -> if v < 0 || v >= n then
        invalid_arg "Label.int: value out of range" else v);
    decode = (fun i -> i);
    pp = Format.pp_print_int;
  }

let pair a b =
  {
    card = a.card * b.card;
    encode = (fun (x, y) -> (a.encode x * b.card) + b.encode y);
    decode = (fun i -> (a.decode (i / b.card), b.decode (i mod b.card)));
    pp = (fun ppf (x, y) -> Format.fprintf ppf "(%a, %a)" a.pp x b.pp y);
  }

let triple a b c =
  let nested = pair a (pair b c) in
  {
    card = nested.card;
    encode = (fun (x, y, z) -> nested.encode (x, (y, z)));
    decode = (fun i -> let x, (y, z) = nested.decode i in (x, y, z));
    pp =
      (fun ppf (x, y, z) ->
        Format.fprintf ppf "(%a, %a, %a)" a.pp x b.pp y c.pp z);
  }

let power base k =
  let rec loop acc k = if k = 0 then acc else loop (acc * base) (k - 1) in
  loop 1 k

let vector a k =
  if k < 0 then invalid_arg "Label.vector: negative length";
  let card = power a.card k in
  if card <= 0 then invalid_arg "Label.vector: cardinality overflow";
  {
    card;
    encode =
      (fun arr ->
        if Array.length arr <> k then
          invalid_arg "Label.vector: wrong array length";
        Array.fold_left (fun acc v -> (acc * a.card) + a.encode v) 0 arr);
    decode =
      (fun i ->
        let arr = Array.make k (a.decode 0) in
        let rest = ref i in
        for pos = k - 1 downto 0 do
          arr.(pos) <- a.decode (!rest mod a.card);
          rest := !rest / a.card
        done;
        arr);
    pp =
      (fun ppf arr ->
        Format.fprintf ppf "[|";
        Array.iteri
          (fun i v ->
            if i > 0 then Format.fprintf ppf "; ";
            a.pp ppf v)
          arr;
        Format.fprintf ppf "|]");
  }

let bool_vector k = vector bool k

let enum values ~pp ~equal =
  let arr = Array.of_list values in
  let card = Array.length arr in
  if card = 0 then invalid_arg "Label.enum: empty value list";
  let encode v =
    let rec find i =
      if i >= card then invalid_arg "Label.enum: value not in space"
      else if equal arr.(i) v then i
      else find (i + 1)
    in
    find 0
  in
  { card; encode; decode = (fun i -> arr.(i)); pp }

let option a =
  {
    card = a.card + 1;
    encode = (function None -> 0 | Some v -> 1 + a.encode v);
    decode = (fun i -> if i = 0 then None else Some (a.decode (i - 1)));
    pp =
      (fun ppf -> function
        | None -> Format.pp_print_string ppf "ω"
        | Some v -> a.pp ppf v);
  }

let iso ~fwd ~bwd ~pp a =
  {
    card = a.card;
    encode = (fun b -> a.encode (bwd b));
    decode = (fun i -> fwd (a.decode i));
    pp;
  }

let check_roundtrip t =
  let rec loop i =
    if i >= t.card then true
    else if t.encode (t.decode i) = i then loop (i + 1)
    else false
  in
  loop 0
