(** The round-complexity extremal protocol of Lemma C.2(2).

    On the unidirectional n-ring with Σ = \{0, ..., q-1\}, node 0 increments
    the value it receives (saturating at [q-1]) and every other node relays
    it; a node outputs 1 exactly when it sees the saturated value. Started
    from the all-zeros labeling, the protocol needs [n (q - 1)] rounds to
    stabilize, matching the generic upper bound [R_n <= n |Σ|] of
    Lemma C.2(1) up to the additive [n]. *)

val make : n:int -> q:int -> (unit, int) Protocol.t

val input : int -> unit array

(** The all-zeros initial configuration from the lemma. *)
val slow_init : (unit, int) Protocol.t -> int Protocol.config

(** The lemma's predicted synchronous stabilization time, [n (q - 1)]. *)
val predicted_rounds : n:int -> q:int -> int

(** The generic unidirectional upper bound of Lemma C.2(1), [n |Σ| = n q]. *)
val upper_bound : n:int -> q:int -> int
