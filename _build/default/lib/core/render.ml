module Digraph = Stateless_graph.Digraph

let grid ~header ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iteri
    (fun t row ->
      Buffer.add_string buf (Printf.sprintf "%4d | %s\n" (t + 1) row))
    rows;
  Buffer.contents buf

let outputs_over_time p ~input ~init ~schedule ~steps =
  let trace = Engine.trace p ~input ~init ~schedule ~steps in
  let rows =
    List.map
      (fun c ->
        String.concat " "
          (Array.to_list (Array.map string_of_int c.Protocol.outputs)))
      (List.tl trace)
  in
  let n = Protocol.num_nodes p in
  let header =
    Printf.sprintf "time | outputs of nodes 0..%d (%s)" (n - 1)
      p.Protocol.name
  in
  grid ~header ~rows

let labels_over_time p ~input ~init ~schedule ~steps =
  let trace = Engine.trace p ~input ~init ~schedule ~steps in
  let g = p.Protocol.graph in
  let header =
    Printf.sprintf "time | %s"
      (String.concat " "
         (List.init (Digraph.num_edges g) (fun e ->
              let i, j = Digraph.edge g e in
              Printf.sprintf "%d>%d" i j)))
  in
  let rows =
    List.map
      (fun c ->
        String.concat " "
          (Array.to_list
             (Array.mapi
                (fun e l ->
                  let i, j = Digraph.edge g e in
                  let width = String.length (Printf.sprintf "%d>%d" i j) in
                  let s = string_of_int (p.Protocol.space.Label.encode l) in
                  ignore e;
                  s ^ String.make (max 0 (width - String.length s)) ' ')
                c.Protocol.labels)))
      (List.tl trace)
  in
  grid ~header ~rows

let node_bits_over_time p ~input ~init ~schedule ~steps =
  let trace = Engine.trace p ~input ~init ~schedule ~steps in
  let g = p.Protocol.graph in
  let n = Digraph.num_nodes g in
  let rows =
    List.map
      (fun c ->
        String.init n (fun i ->
            let out = Digraph.out_edges g i in
            if Array.length out = 0 then '?'
            else if c.Protocol.labels.(out.(0)) then '#'
            else '.'))
      (List.tl trace)
  in
  let header = Printf.sprintf "time | nodes 0..%d (%s)" (n - 1) p.Protocol.name in
  grid ~header ~rows
