(** Randomized reaction functions — future-work direction (4) of Section 7.

    A randomized stateless protocol draws coins inside its reaction
    functions. Theorem 3.1's adversary commits to a fair schedule but
    cannot see the coins, so randomization can escape impossibility: once
    coin flips can spontaneously reach an absorbing stable labeling, the
    oblivious chase schedule that defeats the deterministic protocol loses
    with probability 1.

    Oscillation can no longer be certified by state recurrence (coins
    differ between visits), so the execution API here reports quiescence —
    the labeling not changing for a configurable window — and convergence
    statistics over seeds, rather than exact verdicts. *)

type ('x, 'l) t = {
  name : string;
  graph : Stateless_graph.Digraph.t;
  space : 'l Label.t;
  react : Random.State.t -> int -> 'x -> 'l array -> 'l array * int;
}

(** [of_protocol p] embeds a deterministic protocol (ignoring the coins). *)
val of_protocol : ('x, 'l) Protocol.t -> ('x, 'l) t

(** [step t ~rng ~input config ~active]. *)
val step :
  ('x, 'l) t ->
  rng:Random.State.t ->
  input:'x array ->
  'l Protocol.config ->
  active:int list ->
  'l Protocol.config

(** [time_to_quiescence t ~input ~init ~schedule ~seed ~quiet ~max_steps]
    is the first step after which the labeling does not change for [quiet]
    consecutive steps, or [None]. *)
val time_to_quiescence :
  ('x, 'l) t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seed:int ->
  quiet:int ->
  max_steps:int ->
  int option

(** [convergence_rate t ~input ~init ~schedule ~seeds ~quiet ~max_steps]
    runs one trial per seed and returns (converged, total, worst time). *)
val convergence_rate :
  ('x, 'l) t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seeds:int list ->
  quiet:int ->
  max_steps:int ->
  int * int * int

(** [lazy_example1 n ~ignite] — Example 1 with randomized ignition: a node
    that hears a 1 answers 1 (deterministically), and a node that hears
    silence spontaneously ignites with probability [ignite]. The all-ones
    labeling is absorbing, all-zeros is left with positive probability per
    activation, so every fair schedule converges almost surely — including
    the (n-1)-fair chase that traps the deterministic protocol forever. *)
val lazy_example1 : int -> ignite:float -> (unit, bool) t
