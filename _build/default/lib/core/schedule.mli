(** Schedules σ : N⁺ → 2^[n] \ ∅ — the (possibly adversarial) activation
    model of Section 2.1.

    A schedule chooses, for each time step, the nonempty set of nodes that
    apply their reaction functions. A schedule is [r]-fair when every node is
    activated at least once in every window of [r] consecutive steps; the
    synchronous model of Part II is the 1-fair schedule that activates
    everybody at every step. *)

type t = {
  name : string;
  period : int option;
      (** [Some p] when [active] is periodic with period [p] (steps [t] and
          [t + p] activate the same set). Enables exact oscillation detection
          in the engine. [None] for randomized schedules. *)
  active : int -> int list;
      (** [active t] for [t >= 0] is the sorted, nonempty activation set of
          time step [t + 1] in the paper's 1-based numbering. Must be a pure
          function of [t] (internally memoized closures are fine). *)
}

(** Activate every node at every step (1-fair). *)
val synchronous : int -> t

(** Activate one node per step, cyclically: node [t mod n] at step [t].
    This is n-fair but not (n-1)-fair. *)
val round_robin : int -> t

(** [block_rounds sets] cycles through the given list of activation sets.
    @raise Invalid_argument if the list is empty or contains an empty set. *)
val block_rounds : int list list -> t

(** [prefix_then sets rest] plays [sets] once, then behaves as [rest]
    shifted in time. The period is inherited from [rest]. *)
val prefix_then : int list list -> t -> t

(** [random_fair ~seed ~r n] draws each step uniformly among the node
    subsets that keep the schedule r-fair: nodes whose deadline expires are
    forced in, every other node joins with probability 1/2, and if the draw
    is empty one random node is activated. *)
val random_fair : seed:int -> r:int -> int -> t

(** [random_singletons ~seed n] activates a single uniformly random node per
    step. Fair with probability 1 but not r-fair for any fixed r. *)
val random_singletons : seed:int -> int -> t

(** [is_r_fair sched ~n ~r ~horizon] audits the first [horizon] steps: every
    node must appear in every window of [r] consecutive steps that fits in
    the horizon. *)
val is_r_fair : t -> n:int -> r:int -> horizon:int -> bool

(** [fairness sched ~n ~horizon] is the smallest [r] such that the first
    [horizon] steps are r-fair, or [None] if some node never appears. *)
val fairness : t -> n:int -> horizon:int -> int option
