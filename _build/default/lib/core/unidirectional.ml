module Digraph = Stateless_graph.Digraph

let is_unidirectional_ring p =
  let g = p.Protocol.graph in
  let n = Digraph.num_nodes g in
  Digraph.num_edges g = n
  && Array.for_all
       (fun i ->
         Digraph.out_degree g i = 1
         && Digraph.in_degree g i = 1
         && Digraph.mem_edge g ~src:i ~dst:((i + 1) mod n))
       (Array.init n (fun i -> i))

let sequential_run p ~input ~start =
  if not (is_unidirectional_ring p) then
    invalid_arg "Unidirectional.sequential_run: not a unidirectional ring";
  let n = Protocol.num_nodes p in
  let card = p.Protocol.space.Label.card in
  let outputs = Array.make n 0 in
  let label = ref start in
  let j = ref 0 in
  for _ = 1 to n * card do
    let out, y = p.Protocol.react !j input.(!j) [| !label |] in
    label := out.(0);
    outputs.(!j) <- y;
    j := (!j + 1) mod n
  done;
  outputs

let round_complexity_bound p =
  if not (is_unidirectional_ring p) then None
  else
    let n = Protocol.num_nodes p in
    let card = p.Protocol.space.Label.card in
    if card > max_int / n then None else Some (n * card)

let agrees_with_synchronous p ~input ~start ~max_steps =
  let sequential = sequential_run p ~input ~start in
  let init = Protocol.uniform_config p start in
  let schedule = Schedule.synchronous (Protocol.num_nodes p) in
  match
    Engine.outputs_after_convergence p ~input ~init ~schedule ~max_steps
  with
  | None -> None
  | Some synchronous -> Some (Array.for_all2 ( = ) sequential synchronous)
