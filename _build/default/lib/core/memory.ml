module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type ('x, 'l, 's) t = {
  name : string;
  graph : Digraph.t;
  space : 'l Label.t;
  states : 's Label.t;
  initial_state : int -> 's;
  react : int -> 'x -> 's -> 'l array -> 's * 'l array * int;
}

type ('l, 's) config = {
  labels : 'l array;
  states : 's array;
  outputs : int array;
}

let memory_bits (t : (_, _, _) t) = Label.bit_length t.states

let of_protocol p =
  {
    name = p.Protocol.name;
    graph = p.Protocol.graph;
    space = p.Protocol.space;
    states = Label.int 1 |> Label.iso ~fwd:(fun _ -> ()) ~bwd:(fun () -> 0)
               ~pp:(fun ppf () -> Format.pp_print_string ppf "()");
    initial_state = (fun _ -> ());
    react =
      (fun i x () incoming ->
        let out, y = p.Protocol.react i x incoming in
        ((), out, y));
  }

let initial_config t l0 =
  let n = Digraph.num_nodes t.graph in
  {
    labels = Array.make (Digraph.num_edges t.graph) l0;
    states = Array.init n t.initial_state;
    outputs = Array.make n 0;
  }

let step t ~input config ~active =
  let reactions =
    List.map
      (fun i ->
        let incoming =
          Array.map (fun e -> config.labels.(e)) (Digraph.in_edges t.graph i)
        in
        (i, t.react i input.(i) config.states.(i) incoming))
      active
  in
  let labels = Array.copy config.labels in
  let states = Array.copy config.states in
  let outputs = Array.copy config.outputs in
  List.iter
    (fun (i, (s, out, y)) ->
      states.(i) <- s;
      Array.iteri
        (fun k e -> labels.(e) <- out.(k))
        (Digraph.out_edges t.graph i);
      outputs.(i) <- y)
    reactions;
  { labels; states; outputs }

let run t ~input ~init ~schedule ~steps =
  let config = ref init in
  for k = 0 to steps - 1 do
    config := step t ~input !config ~active:(schedule.Schedule.active k)
  done;
  !config

let key t config =
  ( Array.map t.space.Label.encode config.labels,
    Array.map t.states.Label.encode config.states )

let is_stable t ~input config =
  let n = Digraph.num_nodes t.graph in
  let rec check i =
    if i >= n then true
    else begin
      let incoming =
        Array.map (fun e -> config.labels.(e)) (Digraph.in_edges t.graph i)
      in
      let s, out, _ = t.react i input.(i) config.states.(i) incoming in
      let edges = Digraph.out_edges t.graph i in
      let labels_fixed =
        Array.for_all
          (fun k ->
            t.space.Label.encode out.(k)
            = t.space.Label.encode config.labels.(edges.(k)))
          (Array.init (Array.length edges) Fun.id)
      in
      let state_fixed =
        t.states.Label.encode s = t.states.Label.encode config.states.(i)
      in
      if labels_fixed && state_fixed then check (i + 1) else false
    end
  in
  check 0

let run_until_stable t ~input ~init ~schedule ~max_steps =
  let seen = Hashtbl.create 64 in
  let period_opt = schedule.Schedule.period in
  let rec loop step_idx config last_change =
    if is_stable t ~input config then `Stabilized step_idx
    else if step_idx >= max_steps then `Exhausted
    else begin
      let verdict = ref None in
      (match period_opt with
      | Some period when step_idx mod period = 0 -> (
          let k = key t config in
          match Hashtbl.find_opt seen k with
          | Some t0 ->
              if last_change > t0 then
                verdict := Some (`Oscillating (t0, step_idx - t0))
              else verdict := Some (`Stabilized last_change)
          | None -> Hashtbl.replace seen k step_idx)
      | _ -> ());
      match !verdict with
      | Some v -> v
      | None ->
          let next =
            step t ~input config ~active:(schedule.Schedule.active step_idx)
          in
          let changed = key t next <> key t config in
          loop (step_idx + 1) next
            (if changed then step_idx + 1 else last_change)
    end
  in
  loop 0 init 0

let blinker () =
  let g = Builders.ring_bi 2 in
  {
    name = "blinker";
    graph = g;
    space = Label.bool;
    states = Label.bool;
    initial_state = (fun _ -> false);
    react =
      (fun i () s _incoming ->
        let out = Array.map (fun _ -> false) (Digraph.out_edges g i) in
        if i = 0 then (not s, out, if s then 1 else 0) else (s, out, 0));
  }

let mod_counter k =
  if k < 2 then invalid_arg "Memory.mod_counter: need k >= 2";
  let g = Builders.ring_bi 2 in
  {
    name = Printf.sprintf "mod-%d-counter" k;
    graph = g;
    space = Label.bool;
    states = Label.int k;
    initial_state = (fun _ -> 0);
    react =
      (fun i () s _incoming ->
        let out = Array.map (fun _ -> false) (Digraph.out_edges g i) in
        if i = 0 then ((s + 1) mod k, out, s) else (s, out, 0));
  }
