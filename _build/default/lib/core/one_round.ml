module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

let clique n f =
  if n < 2 then invalid_arg "One_round.clique: need n >= 2";
  let g = Builders.clique n in
  let react i x incoming =
    (* Assemble the global input: everyone broadcasts their own bit. *)
    let bits = Array.make n false in
    bits.(i) <- x;
    Array.iteri
      (fun k e -> bits.(Digraph.src g e) <- incoming.(k))
      (Digraph.in_edges g i);
    let y = f bits in
    (Array.map (fun _ -> x) (Digraph.out_edges g i), if y then 1 else 0)
  in
  {
    Protocol.name = Printf.sprintf "one-round-clique-%d" n;
    graph = g;
    space = Label.bool;
    react;
  }

let star n f =
  if n < 2 then invalid_arg "One_round.star: need n >= 2";
  let g = Builders.star n in
  let react i x incoming =
    if i = 0 then begin
      (* The hub hears every spoke's bit, evaluates f, and broadcasts the
         answer. *)
      let bits = Array.make n false in
      bits.(0) <- x;
      Array.iteri
        (fun k e -> bits.(Digraph.src g e) <- incoming.(k))
        (Digraph.in_edges g 0);
      let y = f bits in
      (Array.map (fun _ -> y) (Digraph.out_edges g 0), if y then 1 else 0)
    end
    else begin
      (* A spoke sends its input up and repeats the hub's verdict. *)
      let y = incoming.(0) in
      (Array.map (fun _ -> x) (Digraph.out_edges g i), if y then 1 else 0)
    end
  in
  {
    Protocol.name = Printf.sprintf "one-round-star-%d" n;
    graph = g;
    space = Label.bool;
    react;
  }
