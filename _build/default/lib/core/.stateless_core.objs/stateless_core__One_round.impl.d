lib/core/one_round.ml: Array Label Printf Protocol Stateless_graph
