lib/core/schedule.ml: Array Hashtbl List Printf Random
