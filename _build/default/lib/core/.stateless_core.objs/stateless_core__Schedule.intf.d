lib/core/schedule.mli:
