lib/core/stability.mli: Protocol
