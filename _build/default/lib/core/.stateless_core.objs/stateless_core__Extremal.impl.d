lib/core/extremal.ml: Array Label Printf Protocol Stateless_graph
