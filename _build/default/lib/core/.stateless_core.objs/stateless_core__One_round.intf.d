lib/core/one_round.mli: Protocol
