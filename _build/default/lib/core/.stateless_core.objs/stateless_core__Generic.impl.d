lib/core/generic.ml: Array Label Protocol Stateless_graph
