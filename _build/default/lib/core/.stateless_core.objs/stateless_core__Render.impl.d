lib/core/render.ml: Array Buffer Engine Label List Printf Protocol Stateless_graph String
