lib/core/engine.mli: Protocol Schedule
