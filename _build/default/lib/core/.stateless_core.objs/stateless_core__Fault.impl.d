lib/core/fault.ml: Array Engine Label Protocol Random
