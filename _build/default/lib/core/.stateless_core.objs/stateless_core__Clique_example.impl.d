lib/core/clique_example.ml: Array Label List Printf Protocol Schedule Stateless_graph
