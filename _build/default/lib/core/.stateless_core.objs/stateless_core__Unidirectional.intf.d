lib/core/unidirectional.mli: Protocol
