lib/core/unidirectional.ml: Array Engine Label Protocol Schedule Stateless_graph
