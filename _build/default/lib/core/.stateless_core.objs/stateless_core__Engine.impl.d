lib/core/engine.ml: Array Hashtbl Label List Protocol Random Schedule Stateless_graph String
