lib/core/adversary.ml: Array Engine Fun Label List Printf Protocol Random Schedule
