lib/core/memory.mli: Label Protocol Schedule Stateless_graph
