lib/core/generic.mli: Protocol Stateless_graph
