lib/core/randomized.mli: Label Protocol Random Schedule Stateless_graph
