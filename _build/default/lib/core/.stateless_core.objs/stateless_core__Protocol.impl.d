lib/core/protocol.ml: Array Bytes Char Format Label Stateless_graph
