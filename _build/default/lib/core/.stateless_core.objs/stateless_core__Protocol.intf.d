lib/core/protocol.mli: Format Label Stateless_graph
