lib/core/fault.mli: Protocol Schedule
