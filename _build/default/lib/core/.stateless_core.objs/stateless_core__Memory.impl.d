lib/core/memory.ml: Array Format Fun Hashtbl Label List Printf Protocol Schedule Stateless_graph
