lib/core/stability.ml: Array Label List Protocol
