lib/core/clique_example.mli: Protocol Schedule
