lib/core/label.ml: Array Format
