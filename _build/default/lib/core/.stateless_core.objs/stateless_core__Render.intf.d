lib/core/render.mli: Protocol Schedule
