lib/core/extremal.mli: Protocol
