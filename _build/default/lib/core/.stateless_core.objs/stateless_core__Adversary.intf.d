lib/core/adversary.mli: Protocol Schedule
