lib/core/randomized.ml: Array Fun Label List Printf Protocol Random Schedule Stateless_graph
