type t = { name : string; period : int option; active : int -> int list }

let all_nodes n = List.init n (fun i -> i)

let synchronous n =
  if n <= 0 then invalid_arg "Schedule.synchronous: n must be positive";
  let everyone = all_nodes n in
  { name = "synchronous"; period = Some 1; active = (fun _ -> everyone) }

let round_robin n =
  if n <= 0 then invalid_arg "Schedule.round_robin: n must be positive";
  { name = "round-robin"; period = Some n; active = (fun t -> [ t mod n ]) }

let block_rounds sets =
  let arr = Array.of_list (List.map (List.sort_uniq compare) sets) in
  let p = Array.length arr in
  if p = 0 then invalid_arg "Schedule.block_rounds: empty schedule";
  Array.iter
    (fun s -> if s = [] then invalid_arg "Schedule.block_rounds: empty step")
    arr;
  { name = "block-rounds"; period = Some p; active = (fun t -> arr.(t mod p)) }

let prefix_then sets rest =
  let arr = Array.of_list (List.map (List.sort_uniq compare) sets) in
  let k = Array.length arr in
  Array.iter
    (fun s -> if s = [] then invalid_arg "Schedule.prefix_then: empty step")
    arr;
  {
    name = "prefix+" ^ rest.name;
    period = None;
    active = (fun t -> if t < k then arr.(t) else rest.active (t - k));
  }

(* Randomized schedules must be pure functions of [t]; we memoize the random
   draws so that querying the same step twice yields the same set. *)
let memoized_random name ~seed draw =
  let table = Hashtbl.create 64 in
  let state = Random.State.make [| seed |] in
  let next = ref 0 in
  let rec active t =
    match Hashtbl.find_opt table t with
    | Some set -> set
    | None ->
        if t < !next then assert false
        else begin
          (* Generate steps in order up to [t] for reproducibility. *)
          while !next <= t do
            Hashtbl.replace table !next (draw state !next);
            incr next
          done;
          active t
        end
  in
  { name; period = None; active }

let random_fair ~seed ~r n =
  if n <= 0 then invalid_arg "Schedule.random_fair: n must be positive";
  if r <= 0 then invalid_arg "Schedule.random_fair: r must be positive";
  let countdown = Array.make n r in
  let draw state _t =
    let forced = ref [] and optional = ref [] in
    for i = n - 1 downto 0 do
      if countdown.(i) <= 1 then forced := i :: !forced
      else if Random.State.bool state then optional := i :: !optional
    done;
    let chosen =
      match (!forced, !optional) with
      | [], [] -> [ Random.State.int state n ]
      | f, o -> List.sort_uniq compare (f @ o)
    in
    Array.iteri
      (fun i c ->
        if List.mem i chosen then countdown.(i) <- r
        else countdown.(i) <- c - 1)
      countdown;
    chosen
  in
  memoized_random (Printf.sprintf "random-%d-fair" r) ~seed draw

let random_singletons ~seed n =
  if n <= 0 then invalid_arg "Schedule.random_singletons: n must be positive";
  memoized_random "random-singletons" ~seed (fun state _ ->
      [ Random.State.int state n ])

let is_r_fair sched ~n ~r ~horizon =
  if horizon < r then invalid_arg "Schedule.is_r_fair: horizon < r";
  (* last.(i) = most recent step (0-based) at which i was active, or -1. *)
  let last = Array.make n (-1) in
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < horizon do
    List.iter (fun i -> last.(i) <- !t) (sched.active !t);
    (* Once a full window has elapsed, every node must have fired within
       the last r steps. *)
    if !t >= r - 1 then
      Array.iter (fun l -> if l < !t - r + 1 then ok := false) last;
    incr t
  done;
  !ok

let fairness sched ~n ~horizon =
  let last = Array.make n (-1) in
  let worst = ref 1 in
  let missing = ref n in
  for t = 0 to horizon - 1 do
    List.iter
      (fun i ->
        if last.(i) < 0 then decr missing;
        last.(i) <- t)
      (sched.active t);
    if !missing = 0 then
      Array.iter (fun l -> worst := max !worst (t - l + 1)) last
  done;
  if !missing > 0 then None else Some !worst
