lib/counter/two_counter.mli: Stateless_core
