lib/counter/two_counter.ml: Array Bool Fun List Printf Stateless_core Stateless_graph
