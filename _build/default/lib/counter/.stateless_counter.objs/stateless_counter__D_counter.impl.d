lib/counter/d_counter.ml: Array Bool Printf Stateless_core Stateless_graph Two_counter
