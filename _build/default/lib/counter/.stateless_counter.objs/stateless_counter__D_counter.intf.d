lib/counter/d_counter.mli: Stateless_core Two_counter
