(** Protocol → circuit unrolling: the [ĂOS^b_log ⊆ P/poly] direction of
    Theorem 5.4.

    A synchronous run of a stateless protocol for [T] rounds is a layered
    circuit: layer [t] holds one wire per label bit per edge, and each node's
    reaction function becomes a small subcircuit [C_{δ_i}] between
    consecutive layers (the paper realizes each reaction function as a
    circuit of size [M·N·2^N]; we realize it as a shared-minterm DNF, which
    is the same bound). The protocol's input bits are the circuit's inputs;
    the initial labeling is a layer of constants; the output is the target
    node's output wire in the last layer.

    Feasible when [in_degree × label_bits + 1] is small (each reaction
    table is enumerated); this matches the paper's setting of logarithmic
    label complexity and degree-2 topologies. *)

(** [circuit_of_protocol p ~rounds ~init ~node] unrolls [rounds] synchronous
    steps of [p] from the uniform labeling [init] and returns the circuit
    computing [node]'s output after the last step, as a function of the
    protocol's private input bits.

    Label encodings outside [Σ] (unused bit patterns) are reduced modulo
    [|Σ|]; they never occur on reachable wires.

    @raise Invalid_argument when some node has
    [in_degree × label_bits + 1 > 14]. *)
val circuit_of_protocol :
  (bool, 'l) Stateless_core.Protocol.t ->
  rounds:int ->
  init:'l ->
  node:int ->
  Circuit.t
