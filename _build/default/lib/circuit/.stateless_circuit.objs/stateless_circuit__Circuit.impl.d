lib/circuit/circuit.ml: Array Format Hashtbl List Printf Random
