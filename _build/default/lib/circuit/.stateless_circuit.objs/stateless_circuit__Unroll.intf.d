lib/circuit/unroll.mli: Circuit Stateless_core
