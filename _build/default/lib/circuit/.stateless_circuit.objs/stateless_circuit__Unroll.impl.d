lib/circuit/unroll.ml: Array Circuit List Stateless_core Stateless_graph
