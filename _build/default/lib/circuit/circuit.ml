type gate =
  | Input of int
  | Const of bool
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int

type t = { n_inputs : int; gates : gate array; output : int }

let gate_inputs = function
  | Input _ | Const _ -> []
  | Not a -> [ a ]
  | And (a, b) | Or (a, b) | Xor (a, b) -> [ a; b ]

let create ~n_inputs gates ~output =
  if n_inputs < 0 then invalid_arg "Circuit.create: negative input count";
  Array.iteri
    (fun i g ->
      (match g with
      | Input k ->
          if k < 0 || k >= n_inputs then
            invalid_arg "Circuit.create: input index out of range"
      | Const _ | Not _ | And _ | Or _ | Xor _ -> ());
      List.iter
        (fun a ->
          if a < 0 || a >= i then
            invalid_arg "Circuit.create: operand not earlier in the array")
        (gate_inputs g))
    gates;
  if output < 0 || output >= Array.length gates then
    invalid_arg "Circuit.create: output gate out of range";
  { n_inputs; gates; output }

let size c = Array.length c.gates

let depth c =
  let d = Array.make (Array.length c.gates) 0 in
  Array.iteri
    (fun i g ->
      match g with
      | Input _ | Const _ -> d.(i) <- 0
      | Not a -> d.(i) <- d.(a) + 1
      | And (a, b) | Or (a, b) | Xor (a, b) -> d.(i) <- 1 + max d.(a) d.(b))
    c.gates;
  if Array.length c.gates = 0 then 0 else d.(c.output)

let eval_all c x =
  if Array.length x <> c.n_inputs then
    invalid_arg "Circuit.eval: wrong input length";
  let v = Array.make (Array.length c.gates) false in
  Array.iteri
    (fun i g ->
      v.(i) <-
        (match g with
        | Input k -> x.(k)
        | Const b -> b
        | Not a -> not v.(a)
        | And (a, b) -> v.(a) && v.(b)
        | Or (a, b) -> v.(a) || v.(b)
        | Xor (a, b) -> v.(a) <> v.(b)))
    c.gates;
  v

let eval c x = (eval_all c x).(c.output)

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit (%d inputs, %d gates, output g%d)"
    c.n_inputs (size c) c.output;
  Array.iteri
    (fun i g ->
      let s =
        match g with
        | Input k -> Printf.sprintf "x%d" k
        | Const b -> string_of_bool b
        | Not a -> Printf.sprintf "NOT g%d" a
        | And (a, b) -> Printf.sprintf "AND g%d g%d" a b
        | Or (a, b) -> Printf.sprintf "OR g%d g%d" a b
        | Xor (a, b) -> Printf.sprintf "XOR g%d g%d" a b
      in
      Format.fprintf ppf "@,  g%d = %s" i s)
    c.gates;
  Format.fprintf ppf "@]"

let make_circuit = create

module Build = struct
  type t = {
    n_inputs : int;
    mutable gates : gate list;  (* reversed *)
    mutable count : int;
    cache : (gate, int) Hashtbl.t;
  }

  let create ~n_inputs =
    { n_inputs; gates = []; count = 0; cache = Hashtbl.create 64 }

  let push b g =
    match Hashtbl.find_opt b.cache g with
    | Some i -> i
    | None ->
        let i = b.count in
        b.gates <- g :: b.gates;
        b.count <- b.count + 1;
        Hashtbl.replace b.cache g i;
        i

  let input b k =
    if k < 0 || k >= b.n_inputs then
      invalid_arg "Circuit.Build.input: index out of range";
    push b (Input k)

  let const b v = push b (Const v)

  let gate_at b i = List.nth b.gates (b.count - 1 - i)

  let not_ b a =
    match gate_at b a with
    | Not inner -> inner
    | Const v -> const b (not v)
    | Input _ | And _ | Or _ | Xor _ -> push b (Not a)

  let binary b op a c ~on_const =
    let ga = gate_at b a and gc = gate_at b c in
    match (ga, gc) with
    | Const va, Const vc -> const b (on_const va vc)
    | Const va, _ -> (
        match op with
        | `And -> if va then c else const b false
        | `Or -> if va then const b true else c
        | `Xor -> if va then not_ b c else c)
    | _, Const vc -> (
        match op with
        | `And -> if vc then a else const b false
        | `Or -> if vc then const b true else a
        | `Xor -> if vc then not_ b a else a)
    | _ -> (
        let lo = min a c and hi = max a c in
        match op with
        | `And -> push b (And (lo, hi))
        | `Or -> push b (Or (lo, hi))
        | `Xor -> push b (Xor (lo, hi)))

  let and_ b a c = binary b `And a c ~on_const:( && )
  let or_ b a c = binary b `Or a c ~on_const:( || )
  let xor b a c = binary b `Xor a c ~on_const:( <> )

  let and_list b = function
    | [] -> const b true
    | x :: rest -> List.fold_left (and_ b) x rest

  let or_list b = function
    | [] -> const b false
    | x :: rest -> List.fold_left (or_ b) x rest

  let finish b ~output =
    make_circuit ~n_inputs:b.n_inputs
      (Array.of_list (List.rev b.gates))
      ~output
end

let parity n =
  if n < 1 then invalid_arg "Circuit.parity: need n >= 1";
  let b = Build.create ~n_inputs:n in
  let acc = ref (Build.input b 0) in
  for i = 1 to n - 1 do
    acc := Build.xor b !acc (Build.input b i)
  done;
  Build.finish b ~output:!acc

(* Binary popcount: fold each input bit into a ripple-carry increment of the
   running sum (LSB-first list of wire indices). *)
let popcount b n =
  let sum = ref [] in
  for i = 0 to n - 1 do
    let carry = ref (Build.input b i) in
    let bits = ref [] in
    List.iter
      (fun s ->
        let digit = Build.xor b s !carry in
        carry := Build.and_ b s !carry;
        bits := digit :: !bits)
      !sum;
    sum := List.rev (!carry :: !bits)
  done;
  !sum

(* bits (LSB first) >= k, where k is a compile-time constant. Standard MSB
   scan: gt accumulates "already strictly greater", eq accumulates "equal so
   far". *)
let ge_const b bits k =
  let bits_msb = List.rev bits in
  let width = List.length bits_msb in
  if k <= 0 then Build.const b true
  else if k >= 1 lsl width then Build.const b false
  else begin
    let gt = ref (Build.const b false) and eq = ref (Build.const b true) in
    List.iteri
      (fun pos wire ->
        let kbit = k land (1 lsl (width - 1 - pos)) <> 0 in
        if kbit then eq := Build.and_ b !eq wire
        else begin
          gt := Build.or_ b !gt (Build.and_ b !eq wire);
          eq := Build.and_ b !eq (Build.not_ b wire)
        end)
      bits_msb;
    Build.or_ b !gt !eq
  end

let threshold n k =
  if n < 1 then invalid_arg "Circuit.threshold: need n >= 1";
  let b = Build.create ~n_inputs:n in
  let sum = popcount b n in
  Build.finish b ~output:(ge_const b sum k)

let majority n = threshold n ((n + 1) / 2)

let equality n =
  if n < 1 then invalid_arg "Circuit.equality: need n >= 1";
  let b = Build.create ~n_inputs:n in
  let output =
    if n mod 2 = 1 then Build.const b false
    else begin
      let half = n / 2 in
      let eqs =
        List.init half (fun i ->
            Build.not_ b
              (Build.xor b (Build.input b i) (Build.input b (half + i))))
      in
      Build.and_list b eqs
    end
  in
  Build.finish b ~output

let and_all n =
  let b = Build.create ~n_inputs:n in
  Build.finish b
    ~output:(Build.and_list b (List.init n (fun i -> Build.input b i)))

let or_all n =
  let b = Build.create ~n_inputs:n in
  Build.finish b
    ~output:(Build.or_list b (List.init n (fun i -> Build.input b i)))

let of_function n f =
  if n < 0 || n > 20 then invalid_arg "Circuit.of_function: n out of range";
  let b = Build.create ~n_inputs:n in
  let minterms = ref [] in
  for code = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0) in
    if f x then begin
      let literals =
        List.init n (fun i ->
            let inp = Build.input b i in
            if x.(i) then inp else Build.not_ b inp)
      in
      minterms := Build.and_list b literals :: !minterms
    end
  done;
  Build.finish b ~output:(Build.or_list b !minterms)

let random ~seed ~n_inputs ~size =
  if n_inputs < 1 || size < 1 then invalid_arg "Circuit.random: bad shape";
  let state = Random.State.make [| seed |] in
  let b = Build.create ~n_inputs in
  (* Seed the pool with all inputs, then grow with random gates. *)
  let pool = ref (List.init n_inputs (fun i -> Build.input b i)) in
  let pick () =
    let arr = Array.of_list !pool in
    arr.(Random.State.int state (Array.length arr))
  in
  let last = ref (List.hd !pool) in
  for _ = 1 to size do
    let g =
      match Random.State.int state 4 with
      | 0 -> Build.and_ b (pick ()) (pick ())
      | 1 -> Build.or_ b (pick ()) (pick ())
      | 2 -> Build.xor b (pick ()) (pick ())
      | _ -> Build.not_ b (pick ())
    in
    pool := g :: !pool;
    last := g
  done;
  Build.finish b ~output:!last
