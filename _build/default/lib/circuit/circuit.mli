(** Boolean circuits — the P/poly substrate of Theorem 5.4.

    Circuits are fan-in <= 2, given as a gate array in topological order
    (every operand refers to an earlier gate). This is exactly the shape the
    paper's bidirectional-ring simulation consumes: gates [g_1 .. g_|C|] in
    topological order, each computed in its own counter interval. *)

type gate =
  | Input of int  (** input bit index *)
  | Const of bool
  | Not of int  (** operand: earlier gate index *)
  | And of int * int
  | Or of int * int
  | Xor of int * int

type t = private { n_inputs : int; gates : gate array; output : int }

(** [create ~n_inputs gates ~output] validates topological order and ranges.
    @raise Invalid_argument on a forward or out-of-range reference. *)
val create : n_inputs:int -> gate array -> output:int -> t

(** Number of gates (the paper's circuit size |C|). *)
val size : t -> int

(** Longest input-to-output path, counting non-input gates. *)
val depth : t -> int

(** [eval c x] evaluates the output gate on input [x].
    @raise Invalid_argument if [x] has the wrong length. *)
val eval : t -> bool array -> bool

(** [eval_all c x] is the value of every gate. *)
val eval_all : t -> bool array -> bool array

(** [gate_inputs g] lists the operand gate indices of [g] ([] for inputs
    and constants). *)
val gate_inputs : gate -> int list

val pp : Format.formatter -> t -> unit

(** A mutable builder for assembling circuits gate by gate; all builder
    functions return the index of the created (or shared) gate. Constants
    and double negations are lightly simplified. *)
module Build : sig
  type circuit := t
  type t

  val create : n_inputs:int -> t
  val input : t -> int -> int
  val const : t -> bool -> int
  val not_ : t -> int -> int
  val and_ : t -> int -> int -> int
  val or_ : t -> int -> int -> int
  val xor : t -> int -> int -> int
  val and_list : t -> int list -> int
  val or_list : t -> int list -> int

  (** [finish b ~output] freezes the builder. *)
  val finish : t -> output:int -> circuit
end

(** Standard circuit families used by the experiments. *)

(** n-way parity. *)
val parity : int -> t

(** [majority n] outputs 1 iff at least ⌈n/2⌉ input bits are 1 — the
    paper's Maj_n (Σ x_i >= n/2). Built from a popcount of ripple-carry
    adders and a constant comparator. *)
val majority : int -> t

(** [threshold n k] outputs 1 iff at least [k] input bits are 1. *)
val threshold : int -> int -> t

(** [equality n] is the paper's Eq_n: 1 iff [n] is even and the first half
    of the input equals the second half. *)
val equality : int -> t

val and_all : int -> t
val or_all : int -> t

(** [of_function n f] builds a (DNF, exponential-size) circuit for an
    arbitrary function — usable for small [n] only, e.g. to realize reaction
    functions as circuits. *)
val of_function : int -> (bool array -> bool) -> t

(** [random ~seed ~n_inputs ~size] is a random fan-in-2 circuit. *)
val random : seed:int -> n_inputs:int -> size:int -> t
