module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Digraph = Stateless_graph.Digraph

let circuit_of_protocol p ~rounds ~init ~node =
  let g = p.Protocol.graph in
  let n = Digraph.num_nodes g and m = Digraph.num_edges g in
  let space = p.Protocol.space in
  let lbits = Label.bit_length space in
  let card = space.Label.card in
  for i = 0 to n - 1 do
    if (Digraph.in_degree g i * lbits) + 1 > 14 then
      invalid_arg "Unroll.circuit_of_protocol: reaction table too wide"
  done;
  let b = Circuit.Build.create ~n_inputs:n in
  let const_label_wires code =
    Array.init lbits (fun k -> Circuit.Build.const b ((code lsr k) land 1 = 1))
  in
  let wires = Array.init m (fun _ -> const_label_wires (space.Label.encode init)) in
  let output_wire = ref (Circuit.Build.const b false) in
  for round = 1 to rounds do
    let next = Array.make m [||] in
    for i = 0 to n - 1 do
      let in_edges = Digraph.in_edges g i
      and out_edges = Digraph.out_edges g i in
      let indeg = Array.length in_edges in
      let width = (indeg * lbits) + 1 in
      (* Input wires of the reaction subcircuit: label bits of the incoming
         edges (LSB first per edge) followed by the node's input bit. *)
      let input_wires = Array.make width 0 in
      Array.iteri
        (fun k e ->
          Array.iteri
            (fun bit w -> input_wires.((k * lbits) + bit) <- w)
            wires.(e))
        in_edges;
      input_wires.(width - 1) <- Circuit.Build.input b i;
      (* Enumerate the truth table of δ_i. *)
      let table =
        Array.init (1 lsl width) (fun code ->
            let incoming =
              Array.init indeg (fun k ->
                  let v = (code lsr (k * lbits)) land ((1 lsl lbits) - 1) in
                  space.Label.decode (v mod card))
            in
            let x = (code lsr (width - 1)) land 1 = 1 in
            let out, y = p.Protocol.react i x incoming in
            (Array.map space.Label.encode out, y))
      in
      (* One AND selector per assignment, shared by all output bits. *)
      let selectors =
        Array.init (1 lsl width) (fun code ->
            let literals =
              List.init width (fun k ->
                  if (code lsr k) land 1 = 1 then input_wires.(k)
                  else Circuit.Build.not_ b input_wires.(k))
            in
            Circuit.Build.and_list b literals)
      in
      let bit_wire select =
        let terms = ref [] in
        Array.iteri
          (fun code (out_codes, y) ->
            if select out_codes y then terms := selectors.(code) :: !terms)
          table;
        Circuit.Build.or_list b !terms
      in
      Array.iteri
        (fun j e ->
          next.(e) <-
            Array.init lbits (fun bit ->
                bit_wire (fun out_codes _ ->
                    (out_codes.(j) lsr bit) land 1 = 1)))
        out_edges;
      if round = rounds && i = node then
        output_wire := bit_wire (fun _ y -> y <> 0)
    done;
    Array.iteri (fun e w -> wires.(e) <- w) next
  done;
  Circuit.Build.finish b ~output:!output_wire
