lib/bp/bp.mli: Stateless_core
