lib/bp/bp.ml: Array Hashtbl List Stateless_core Stateless_machine
