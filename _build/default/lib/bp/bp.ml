module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Machine = Stateless_machine.Machine

let accept = -2
let reject = -1

type node = { var : int; lo : int; hi : int }
type t = { n_vars : int; nodes : node array; start : int }

let is_sink i = i = accept || i = reject

let create ~n_vars nodes ~start =
  if n_vars < 0 then invalid_arg "Bp.create: negative variable count";
  Array.iteri
    (fun i v ->
      if v.var < 0 || v.var >= n_vars then
        invalid_arg "Bp.create: variable out of range";
      List.iter
        (fun target ->
          if not (is_sink target) then
            if target <= i || target >= Array.length nodes then
              invalid_arg "Bp.create: reference must be a later node or sink")
        [ v.lo; v.hi ])
    nodes;
  if (not (is_sink start)) && (start < 0 || start >= Array.length nodes) then
    invalid_arg "Bp.create: bad start";
  { n_vars; nodes; start }

let size bp = Array.length bp.nodes

let length bp =
  let count = Array.length bp.nodes in
  let len = Array.make count 0 in
  let at i = if is_sink i then 0 else len.(i) in
  for i = count - 1 downto 0 do
    len.(i) <- 1 + max (at bp.nodes.(i).lo) (at bp.nodes.(i).hi)
  done;
  at bp.start

let eval bp x =
  if Array.length x <> bp.n_vars then
    invalid_arg "Bp.eval: wrong input length";
  let rec follow v fuel =
    if v = accept then true
    else if v = reject then false
    else if fuel = 0 then invalid_arg "Bp.eval: path too long"
    else
      let node = bp.nodes.(v) in
      follow (if x.(node.var) then node.hi else node.lo) (fuel - 1)
  in
  follow bp.start (Array.length bp.nodes + 1)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let parity n =
  if n < 1 then invalid_arg "Bp.parity: need n >= 1";
  let idx i p = (2 * i) + p in
  let nodes =
    Array.init (2 * n) (fun k ->
        let i = k / 2 and p = k mod 2 in
        let goto p' = if i = n - 1 then if p' = 1 then accept else reject
          else idx (i + 1) p' in
        { var = i; lo = goto p; hi = goto (1 - p) })
  in
  create ~n_vars:n nodes ~start:(idx 0 0)

let threshold n k =
  if n < 1 then invalid_arg "Bp.threshold: need n >= 1";
  if k <= 0 then
    create ~n_vars:n [||] ~start:accept
  else if k > n then create ~n_vars:n [||] ~start:reject
  else begin
    let width = k + 1 in
    let idx i c = (i * width) + min c k in
    let nodes =
      Array.init (n * width) (fun code ->
          let i = code / width and c = code mod width in
          let goto c' =
            if i = n - 1 then if c' >= k then accept else reject
            else idx (i + 1) c'
          in
          { var = i; lo = goto c; hi = goto (c + 1) })
    in
    create ~n_vars:n nodes ~start:(idx 0 0)
  end

let majority n = threshold n ((n + 1) / 2)

let equality n =
  if n < 1 then invalid_arg "Bp.equality: need n >= 1";
  if n mod 2 = 1 then create ~n_vars:n [||] ~start:reject
  else begin
    let half = n / 2 in
    (* A_i = 3i reads x_i; B_i^f = 3i+1+f reads x_{half+i} expecting f. *)
    let a i = 3 * i in
    let next i = if i = half - 1 then accept else a (i + 1) in
    let nodes =
      Array.init (3 * half) (fun code ->
          let i = code / 3 and role = code mod 3 in
          match role with
          | 0 -> { var = i; lo = (3 * i) + 1; hi = (3 * i) + 2 }
          | 1 -> { var = half + i; lo = next i; hi = reject }
          | _ -> { var = half + i; lo = reject; hi = next i })
    in
    create ~n_vars:n nodes ~start:(a 0)
  end

let of_dfa ~states ~start ~accepting ~delta n =
  if n < 1 then invalid_arg "Bp.of_dfa: need n >= 1";
  if states < 1 || start < 0 || start >= states then
    invalid_arg "Bp.of_dfa: bad automaton";
  let idx i s = (i * states) + s in
  let nodes =
    Array.init (n * states) (fun code ->
        let i = code / states and s = code mod states in
        let goto b =
          let s' = delta s b in
          if i = n - 1 then if accepting s' then accept else reject
          else idx (i + 1) s'
        in
        { var = i; lo = goto false; hi = goto true })
  in
  create ~n_vars:n nodes ~start:(idx 0 start)

let of_function n f =
  if n < 1 || n > 16 then invalid_arg "Bp.of_function: n out of range";
  (* Heap-shaped complete decision tree reading x_0 .. x_{n-1} in order. *)
  let total = (1 lsl n) - 1 in
  let nodes =
    Array.init total (fun k ->
        let depth =
          let rec d acc v = if v <= 1 then acc else d (acc + 1) (v / 2) in
          d 0 (k + 1)
        in
        let goto b =
          let child = (2 * k) + (if b then 2 else 1) in
          if child < total then child
          else begin
            (* Leaf: recover the assignment from the heap path. *)
            let path = child + 1 in
            let x =
              Array.init n (fun i -> (path lsr (n - 1 - i)) land 1 = 1)
            in
            if f x then accept else reject
          end
        in
        { var = depth; lo = goto false; hi = goto true })
  in
  create ~n_vars:n nodes ~start:(if total = 0 then reject else 0)

let reduce bp =
  let count = Array.length bp.nodes in
  (* Processing bottom-up (references only point forward), rewrite every
     node to its canonical representative: skip redundant tests ([lo = hi])
     and share structurally equal nodes. *)
  let canon : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let replacement = Array.make count 0 in
  let keep = Array.make count false in
  let resolve target =
    if is_sink target then target else replacement.(target)
  in
  for i = count - 1 downto 0 do
    let v = bp.nodes.(i) in
    let lo = resolve v.lo and hi = resolve v.hi in
    if lo = hi then replacement.(i) <- lo
    else begin
      match Hashtbl.find_opt canon (v.var, lo, hi) with
      | Some j -> replacement.(i) <- j
      | None ->
          Hashtbl.replace canon (v.var, lo, hi) i;
          replacement.(i) <- i;
          keep.(i) <- true
    end
  done;
  let start = resolve bp.start in
  (* Only keep canonical nodes reachable from the (resolved) start. *)
  let reachable = Array.make count false in
  let rec visit target =
    let target = resolve target in
    if not (is_sink target) then
      if not reachable.(target) then begin
        reachable.(target) <- true;
        visit bp.nodes.(target).lo;
        visit bp.nodes.(target).hi
      end
  in
  visit start;
  (* Compact, preserving relative order (keeps all references forward). *)
  let new_index = Array.make count (-1) in
  let next = ref 0 in
  for i = 0 to count - 1 do
    if keep.(i) && reachable.(i) then begin
      new_index.(i) <- !next;
      incr next
    end
  done;
  let remap target =
    let target = resolve target in
    if is_sink target then target else new_index.(target)
  in
  let nodes = ref [] in
  for i = count - 1 downto 0 do
    if new_index.(i) >= 0 then
      nodes :=
        {
          var = bp.nodes.(i).var;
          lo = remap bp.nodes.(i).lo;
          hi = remap bp.nodes.(i).hi;
        }
        :: !nodes
  done;
  create ~n_vars:bp.n_vars (Array.of_list !nodes) ~start:(remap bp.start)

(* ------------------------------------------------------------------ *)
(* Theorem 5.2, forward: protocol -> branching program                 *)
(* ------------------------------------------------------------------ *)

let of_uni_protocol p ~start =
  if not (Stateless_core.Unidirectional.is_unidirectional_ring p) then
    invalid_arg "Bp.of_uni_protocol: not a unidirectional ring";
  let n = Protocol.num_nodes p in
  let space = p.Protocol.space in
  let card = space.Label.card in
  let rounds = n * card in
  let idx t code = (t * card) + code in
  let nodes =
    Array.init (rounds * card) (fun k ->
        let t = k / card and code = k mod card in
        let j = t mod n in
        let goto b =
          let out, y = p.Protocol.react j b [| space.Label.decode code |] in
          let code' = space.Label.encode out.(0) in
          if t = rounds - 1 then if y <> 0 then accept else reject
          else idx (t + 1) code'
        in
        { var = j; lo = goto false; hi = goto true })
  in
  create ~n_vars:n nodes ~start:(idx 0 (space.Label.encode start))

(* ------------------------------------------------------------------ *)
(* Theorem 5.2, reverse: branching program -> protocol                 *)
(* ------------------------------------------------------------------ *)

(* A branching program is a machine whose configurations are the program
   nodes plus two absorbing sinks; the ring compiler of Appendix C is then
   shared with the Turing-machine construction. *)
let machine_of_bp bp =
  let count = size bp in
  let accept_id = count and reject_id = count + 1 in
  let intern v =
    if v = accept then accept_id else if v = reject then reject_id else v
  in
  {
    Machine.name = "bp";
    n = bp.n_vars;
    configs = count + 2;
    initial = intern bp.start;
    head = (fun z -> if z >= count then 0 else bp.nodes.(z).var);
    step =
      (fun z b ->
        if z >= count then z
        else intern (if b then bp.nodes.(z).hi else bp.nodes.(z).lo));
    accepting = (fun z -> z = accept_id);
  }

let protocol_of_bp bp =
  if bp.n_vars < 2 then invalid_arg "Bp.protocol_of_bp: need >= 2 variables";
  let p = Machine.protocol_of_machine (machine_of_bp bp) in
  { p with Protocol.name = "bp-ring" }

let convergence_bound bp = Machine.convergence_bound (machine_of_bp bp)
