(** Branching programs — the L/poly substrate of Theorem 5.2.

    A branching program is a DAG of decision nodes; node [v] reads input
    variable [var v] and moves to [lo v] or [hi v]. Sinks are the two
    pseudo-indices {!accept} and {!reject}. We require forward references
    only ([lo], [hi] greater than the node's own index, or sinks), which
    enforces acyclicity and makes the longest path trivial to compute.

    Polynomial-size branching programs decide exactly L/poly, which by
    Theorem 5.2 is exactly what stateless protocols with logarithmic labels
    on the unidirectional ring decide. Both directions of that equivalence
    are implemented here: {!of_uni_protocol} turns a protocol into the
    branching program that replays Appendix C's sequential simulation, and
    {!protocol_of_bp} turns a branching program into a self-stabilizing
    unidirectional-ring protocol via the query-token construction. *)

(** Sink pseudo-indices: negative by convention. *)
val accept : int

val reject : int

type node = { var : int; lo : int; hi : int }

type t = private { n_vars : int; nodes : node array; start : int }

(** [create ~n_vars nodes ~start] validates variable ranges and forward
    references. An empty program must have a sink as [start]. *)
val create : n_vars:int -> node array -> start:int -> t

val size : t -> int

(** Longest root-to-sink path (number of decisions). *)
val length : t -> int

(** [eval bp x]. *)
val eval : t -> bool array -> bool

(** {2 Builders} *)

(** [parity n]: width-2, length-n layered program. *)
val parity : int -> t

(** [threshold n k]: counts ones; width ≤ k+1. *)
val threshold : int -> int -> t

val majority : int -> t

(** [equality n]: reads x_i and x_{n/2+i} alternately — width 3, showing
    how variable order lets BPs compute Eq_n cheaply even though
    label-stabilizing ring protocols cannot (Corollary 6.3). Odd [n]
    rejects everything. *)
val equality : int -> t

(** [of_dfa ~states ~start ~accepting ~delta n] runs a DFA over the input
    bits in index order. *)
val of_dfa :
  states:int ->
  start:int ->
  accepting:(int -> bool) ->
  delta:(int -> bool -> int) ->
  int ->
  t

(** [of_function n f]: complete decision tree; exponential, tests only. *)
val of_function : int -> (bool array -> bool) -> t

(** [reduce bp] merges nodes with identical (var, lo, hi) behaviour and
    elides redundant tests ([lo = hi]), bottom-up — the OBDD reduction
    rules applied to a general branching program. The function is
    preserved; the size never grows. Useful before {!protocol_of_bp}, since
    the ring protocol's label complexity is [O(log size)]. *)
val reduce : t -> t

(** {2 Theorem 5.2, forward direction} *)

(** [of_uni_protocol p ~start] unrolls the sequential simulation of a
    unidirectional-ring protocol (Appendix C) into a layered branching
    program with [n·|Σ|] layers of width [|Σ|]: layer [t] holds one node
    per label value, reading variable [t mod n]. Accepts iff the
    protocol's stabilized output is 1 when started from the uniform
    labeling [start].
    @raise Invalid_argument if the graph is not the unidirectional ring. *)
val of_uni_protocol : (bool, 'l) Stateless_core.Protocol.t -> start:'l -> t

(** {2 Theorem 5.2, reverse direction} *)

(** [protocol_of_bp bp] compiles a branching program into a stateless
    protocol on the unidirectional [n_vars]-ring with label complexity
    [O(log size)]: a token [(v, b, c, o)] carries the current program node
    [v], the answer [b] to its pending variable query, a reset counter [c],
    and the latched output [o]. Node 0 advances the program and periodically
    restarts it; the owner of the queried variable fills in [b]. Outputs
    converge to [eval bp x] from any initial labeling.
    @raise Invalid_argument if [n_vars < 2]. *)
val protocol_of_bp : t -> (bool, int * (bool * (int * bool))) Stateless_core.Protocol.t

(** Synchronous convergence bound for {!protocol_of_bp}:
    [(2 (size + 2) + 2) · n] steps (one reset latency plus one full replay,
    per circulating token). *)
val convergence_bound : t -> int
