lib/compile/compile.ml: Array Fun Hashtbl List Option Printf Random Stateless_circuit Stateless_core Stateless_counter Stateless_graph
