lib/compile/compile.mli: Stateless_circuit Stateless_core Stateless_counter
