(** Boolean circuit → bidirectional-ring protocol: the [P/poly ⊆ ĂOS^b_log]
    direction of Theorem 5.4.

    Layout (following Appendix C, 0-indexed): ring nodes [0 .. n-1] own the
    circuit's input bits; every gate [j] gets a {e compute} node
    [a_j = n + 2j] and a {e memory} node [m_j = n + 2j + 1]; one extra idle
    node pads the ring to odd size when [n] is even.

    The label is [(counter fields, (i1, i2), (v, o))]:

    - the counter fields run the D-counter of Claim 5.6, giving every node
      the same clock value [c ∈ {0..D-1}] every round;
    - the clock is partitioned into one interval per gate, in topological
      order. In gate [j]'s interval, the owners of its two operands (an
      input node, or the memory node of an earlier gate) copy their values
      into the [i1]/[i2] fields on two consecutive ticks; the fields ride
      clockwise one hop per tick; when they arrive, [a_j] applies the gate
      and stores the result into [v] on two consecutive ticks (two, so that
      both phases of the [a_j]/[m_j] ping-pong are overwritten — the
      paper's "retain memory via communication" cell);
    - outside its write window a compute node refreshes [v] from its memory
      node and vice versa, so gate values persist statelessly;
    - the memory node of the last gate continuously copies its [v] into
      [o], which floods clockwise: every node's output converges to the
      circuit's output.

    Self-stabilization is inherited from the counter: once the clock is
    agreed (O(N) rounds), the next full clock cycle recomputes every gate
    from scratch, and one more ring traversal publishes the output — no
    matter how the labels were initialized.

    Interval lengths here are [d_j + 2] (the paper uses [d_j + 1] with a
    slightly different distance convention); label complexity is
    [6 + 3⌈log2 D⌉] bits, matching the paper's [3 log D + 6]. *)

type label =
  Stateless_counter.D_counter.fields * ((bool * bool) * (bool * bool))

type t = private {
  circuit : Stateless_circuit.Circuit.t;
  ring_size : int;  (** N = n + 2|C| (+1 if n even). *)
  clock_period : int;  (** D = Σ_j (d_j + 2). *)
  counter : Stateless_counter.D_counter.t;
  protocol : (bool, label) Stateless_core.Protocol.t;
}

(** [make circuit] compiles the circuit. The protocol's input array has
    length [ring_size]; positions [>= n_inputs] are ignored (see
    {!ring_input}).

    [write_ticks] (default 2) is the number of consecutive clock ticks each
    field write is repeated for; two overwrite both phases of the
    compute/memory ping-pong within the cycle that computes the value (the
    paper's "two consecutive time steps" remark). With one tick, the stale
    phase only heals when the next clock cycle recomputes the gate, costing
    convergence latency.

    [memory] (default true) enables the ping-pong refresh — the paper's
    "retain memory via communication" cell. [memory:false] exists only for
    the ablation experiment: without the cell, gate values evaporate
    between clock intervals and downstream gates read garbage. *)
val make :
  ?write_ticks:int -> ?memory:bool -> Stateless_circuit.Circuit.t -> t

(** [ring_input t x] pads the circuit input [x] to the ring size. *)
val ring_input : t -> bool array -> bool array

(** Synchronous convergence bound from an arbitrary initial labeling:
    counter burn-in + two full clock cycles + one ring traversal. *)
val convergence_bound : t -> int

(** The paper's label complexity [6 + 3 log D]. *)
val label_bits : t -> int

(** [run t x] simulates from the all-zeros labeling until the outputs
    converge and returns the agreed output; [None] if the run exceeds
    {!convergence_bound} without converging (which would falsify the
    construction). *)
val run : t -> bool array -> bool option

(** [run_from t x ~seed] — like {!run} but from a seeded random initial
    labeling, exercising self-stabilization. *)
val run_from : t -> bool array -> seed:int -> bool option
