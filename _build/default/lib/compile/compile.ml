module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Engine = Stateless_core.Engine
module Schedule = Stateless_core.Schedule
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders
module Circuit = Stateless_circuit.Circuit
module D_counter = Stateless_counter.D_counter

type label = D_counter.fields * ((bool * bool) * (bool * bool))

type t = {
  circuit : Circuit.t;
  ring_size : int;
  clock_period : int;
  counter : D_counter.t;
  protocol : (bool, label) Protocol.t;
}

(* Where an operand's value lives on the ring: input bits at their input
   node, gate values at the gate's memory node (read off the compute ->
   memory edge's v field, i.e. the ccw incoming label). *)
type source = From_input | From_memory

type role =
  | Write_i1 of source
  | Write_i2 of source
  | Compute of int  (* gate index *)

let resolve circuit idx =
  match circuit.Circuit.gates.(idx) with
  | Circuit.Input k -> `Input k
  | Circuit.Const _ | Circuit.Not _ | Circuit.And _ | Circuit.Or _
  | Circuit.Xor _ ->
      `Gate idx

let make ?(write_ticks = 2) ?(memory = true) circuit =
  let n = circuit.Circuit.n_inputs in
  let gate_count = Circuit.size circuit in
  if gate_count = 0 then invalid_arg "Compile.make: empty circuit";
  if write_ticks < 1 then invalid_arg "Compile.make: write_ticks >= 1";
  let base = n + (2 * gate_count) in
  let ring_size = if base mod 2 = 0 then base + 1 else base in
  let compute_node j = n + (2 * j) in
  let memory_node j = n + (2 * j) + 1 in
  let dist u w = (((w - u) mod ring_size) + ring_size) mod ring_size in
  let owner = function `Input k -> k | `Gate k -> memory_node k in
  let source_of = function `Input _ -> From_input | `Gate _ -> From_memory in
  (* (node, clock tick) -> roles. A node can hold several roles at one tick
     only when a gate repeats an operand. *)
  let roles : (int * int, role list) Hashtbl.t = Hashtbl.create 64 in
  let add_role key role =
    let existing = Option.value ~default:[] (Hashtbl.find_opt roles key) in
    Hashtbl.replace roles key (role :: existing)
  in
  let clock = ref 0 in
  Array.iteri
    (fun j gate ->
      let a = compute_node j in
      let operands =
        match gate with
        | Circuit.Const _ -> []
        | Circuit.Input k -> [ (`I1, `Input k) ]
        | Circuit.Not x -> [ (`I1, resolve circuit x) ]
        | Circuit.And (x, y) | Circuit.Or (x, y) | Circuit.Xor (x, y) ->
            [ (`I1, resolve circuit x); (`I2, resolve circuit y) ]
      in
      let s = !clock in
      (* d = latest clockwise travel time to the compute node; each operand
         is written so that its wavefront arrives exactly at tick s + d. *)
      let d =
        List.fold_left
          (fun acc (_, op) -> max acc (dist (owner op) a))
          1 operands
      in
      List.iter
        (fun (field, op) ->
          let k = owner op in
          let off = d - dist k a in
          let role =
            match field with
            | `I1 -> Write_i1 (source_of op)
            | `I2 -> Write_i2 (source_of op)
          in
          for tick = 0 to write_ticks - 1 do
            add_role (k, s + off + tick) role
          done)
        operands;
      for tick = 0 to write_ticks - 1 do
        add_role (a, s + d + tick) (Compute j)
      done;
      clock := s + d + write_ticks)
    circuit.Circuit.gates;
  let clock_period = max 2 !clock in
  let counter = D_counter.make ~n:ring_size ~d:clock_period () in
  let space =
    Label.pair counter.D_counter.space
      (Label.pair
         (Label.pair Label.bool Label.bool)
         (Label.pair Label.bool Label.bool))
  in
  let g = Builders.ring_bi ring_size in
  let is_compute = Array.make ring_size (-1) in
  for j = 0 to gate_count - 1 do
    is_compute.(compute_node j) <- j
  done;
  let last_memory = memory_node circuit.Circuit.output in
  let react u x incoming =
    let ccw_lab = ref None and cw_lab = ref None in
    Array.iteri
      (fun k e ->
        let s = Digraph.src g e in
        if s = (u + ring_size - 1) mod ring_size then
          ccw_lab := Some incoming.(k)
        else if s = (u + 1) mod ring_size then cw_lab := Some incoming.(k))
      (Digraph.in_edges g u);
    let ccw_counter, ((ccw_i1, ccw_i2), (ccw_v, ccw_o)) =
      Option.get !ccw_lab
    and cw_counter, (_, (cw_v, _)) = Option.get !cw_lab in
    let counter_fields =
      D_counter.emit counter u ~ccw:ccw_counter ~cw:cw_counter
    in
    let _, (_, _, c_now) = counter_fields in
    let my_roles =
      Option.value ~default:[] (Hashtbl.find_opt roles (u, c_now))
    in
    let value_of_source = function
      | From_input -> x
      | From_memory -> ccw_v
    in
    let find_write f =
      List.fold_left
        (fun acc role -> match f role with Some v -> Some v | None -> acc)
        None my_roles
    in
    let i1 =
      match
        find_write (function Write_i1 s -> Some s | _ -> None)
      with
      | Some src -> value_of_source src
      | None -> ccw_i1
    in
    let i2 =
      match
        find_write (function Write_i2 s -> Some s | _ -> None)
      with
      | Some src -> value_of_source src
      | None -> ccw_i2
    in
    let v =
      match
        find_write (function Compute j -> Some j | _ -> None)
      with
      | Some j -> (
          match circuit.Circuit.gates.(j) with
          | Circuit.Input _ -> ccw_i1
          | Circuit.Const b -> b
          | Circuit.Not _ -> not ccw_i1
          | Circuit.And _ -> ccw_i1 && ccw_i2
          | Circuit.Or _ -> ccw_i1 || ccw_i2
          | Circuit.Xor _ -> ccw_i1 <> ccw_i2)
      | None ->
          (* The "retain memory via communication" cell: an idle compute
             node refreshes its gate value from its memory node. Without it
             (ablation) gate values evaporate between clock intervals. *)
          if is_compute.(u) >= 0 then (if memory then cw_v else false)
          else ccw_v
    in
    let o = if u = last_memory then ccw_v else ccw_o in
    let out : label = (counter_fields, ((i1, i2), (v, o))) in
    (Array.map (fun _ -> out) (Digraph.out_edges g u), if o then 1 else 0)
  in
  let protocol =
    {
      Protocol.name = Printf.sprintf "circuit-ring-%d" ring_size;
      graph = g;
      space;
      react;
    }
  in
  { circuit; ring_size; clock_period; counter; protocol }

let ring_input t x =
  if Array.length x <> t.circuit.Circuit.n_inputs then
    invalid_arg "Compile.ring_input: wrong input length";
  Array.init t.ring_size (fun i ->
      if i < Array.length x then x.(i) else false)

let convergence_bound t =
  D_counter.burn_in t.counter + (3 * t.clock_period) + (2 * t.ring_size) + 8

let label_bits t = 4 + D_counter.label_bits t.counter

let run_general t x ~init =
  let input = ring_input t x in
  let schedule = Schedule.synchronous t.ring_size in
  let bound = convergence_bound t in
  let config = ref (Engine.run t.protocol ~input ~init ~schedule ~steps:bound) in
  (* Outputs must be unanimous and persist for a full clock cycle plus a
     ring traversal. *)
  let first = Array.copy !config.Protocol.outputs in
  let steady = ref true in
  for _ = 1 to t.clock_period + t.ring_size do
    config :=
      Engine.step t.protocol ~input !config
        ~active:(List.init t.ring_size Fun.id);
    if not (Array.for_all2 ( = ) first !config.Protocol.outputs) then
      steady := false
  done;
  if !steady && Array.for_all (fun y -> y = first.(0)) first then
    Some (first.(0) = 1)
  else None

let run t x =
  let init =
    Protocol.uniform_config t.protocol
      (t.protocol.Protocol.space.Label.decode 0)
  in
  run_general t x ~init

let run_from t x ~seed =
  let state = Random.State.make [| seed |] in
  let card = t.protocol.Protocol.space.Label.card in
  let labels =
    Array.init (Protocol.num_edges t.protocol) (fun _ ->
        t.protocol.Protocol.space.Label.decode (Random.State.int state card))
  in
  run_general t x ~init:(Protocol.config_of_labels t.protocol labels)
