lib/games/spp.mli: Stateless_core Stateless_graph
