lib/games/best_response.ml: Array List Stateless_core Stateless_graph
