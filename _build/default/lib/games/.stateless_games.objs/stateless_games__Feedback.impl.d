lib/games/feedback.ml: Array Printf Stateless_core Stateless_graph
