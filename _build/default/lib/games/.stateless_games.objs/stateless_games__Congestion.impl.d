lib/games/congestion.ml: Array Best_response Stateless_core Stateless_graph
