lib/games/spp.ml: Array Format Hashtbl List Random Stateless_core Stateless_graph String
