lib/games/contagion.mli: Best_response Stateless_core Stateless_graph
