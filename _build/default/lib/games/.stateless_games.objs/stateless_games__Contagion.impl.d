lib/games/contagion.ml: Array Best_response Fun List Stateless_core Stateless_graph
