lib/games/congestion.mli: Best_response Stateless_core
