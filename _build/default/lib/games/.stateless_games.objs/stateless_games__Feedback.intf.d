lib/games/feedback.mli: Stateless_core
