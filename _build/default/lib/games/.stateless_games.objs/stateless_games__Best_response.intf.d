lib/games/best_response.mli: Stateless_core Stateless_graph
