module Protocol = Stateless_core.Protocol
module Digraph = Stateless_graph.Digraph

let make graph ~threshold =
  if threshold <= 0.0 || threshold > 1.0 then
    invalid_arg "Contagion.make: threshold must be in (0, 1]";
  {
    Best_response.graph;
    strategies = 2;
    best_response =
      (fun _ observed ->
        let total = Array.length observed in
        if total = 0 then 0
        else begin
          let adopted =
            Array.fold_left (fun acc (_, s) -> acc + s) 0 observed
          in
          if float_of_int adopted >= threshold *. float_of_int total then 1
          else 0
        end);
  }

let seeded_config p seeds =
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p 0 in
  List.iter
    (fun i ->
      Array.iter
        (fun e -> config.Protocol.labels.(e) <- 1)
        (Digraph.out_edges g i))
    seeds;
  config

let adopters p config =
  let g = p.Protocol.graph in
  List.filter
    (fun i ->
      let out = Digraph.out_edges g i in
      Array.length out > 0 && config.Protocol.labels.(out.(0)) = 1)
    (List.init (Protocol.num_nodes p) Fun.id)
