module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Digraph = Stateless_graph.Digraph

type t = {
  n : int;
  graph : Digraph.t;
  permitted : int list list array;
}

let validate_path g node path =
  let rec follow = function
    | [] -> invalid_arg "Spp: empty permitted path"
    | [ last ] -> if last <> 0 then invalid_arg "Spp: path must end at 0"
    | a :: (b :: _ as rest) ->
        if not (Digraph.mem_edge g ~src:b ~dst:a) then
          invalid_arg "Spp: path does not follow links";
        follow rest
  in
  (match path with
  | first :: _ when first = node -> ()
  | _ -> invalid_arg "Spp: path must start at its node");
  if List.length (List.sort_uniq compare path) <> List.length path then
    invalid_arg "Spp: path has a loop";
  follow path

let create ~links permitted =
  let n = Array.length permitted in
  if n < 2 then invalid_arg "Spp.create: need at least two nodes";
  let edges =
    List.concat_map
      (fun (a, b) ->
        if a = b then invalid_arg "Spp.create: self link";
        [ (a, b); (b, a) ])
      links
  in
  let g = Digraph.create ~n (List.sort_uniq compare edges) in
  Array.iteri
    (fun node paths ->
      if node > 0 then List.iter (validate_path g node) paths)
    permitted;
  { n; graph = g; permitted }

let all_paths t =
  let tbl = Hashtbl.create 16 in
  let add p = if not (Hashtbl.mem tbl p) then Hashtbl.replace tbl p () in
  add [];
  add [ 0 ];
  Array.iteri (fun node ps -> if node > 0 then List.iter add ps) t.permitted;
  List.of_seq (Hashtbl.to_seq_keys tbl)

let path_space t =
  Label.enum (all_paths t)
    ~pp:(fun ppf p ->
      Format.fprintf ppf "[%s]"
        (String.concat ";" (List.map string_of_int p)))
    ~equal:(fun a b -> a = b)

(* The best permitted extension of the neighbours' announcements: scan the
   rank list from best to worst and take the first path whose tail is
   currently announced by its next hop. *)
let select t i announcements =
  let ok path =
    match path with
    | _ :: (hop :: _ as tail) ->
        List.exists
          (fun (sender, announced) -> sender = hop && announced = tail)
          announcements
    | _ -> false
  in
  let rec scan rank = function
    | [] -> (rank, [])
    | p :: rest -> if ok p then (rank, p) else scan (rank + 1) rest
  in
  scan 0 t.permitted.(i)

let protocol t =
  let g = t.graph in
  let react i () incoming =
    if i = 0 then
      (Array.map (fun _ -> [ 0 ]) (Digraph.out_edges g i), 0)
    else begin
      let announcements =
        Array.to_list
          (Array.mapi
             (fun k e -> (Digraph.src g e, incoming.(k)))
             (Digraph.in_edges g i))
      in
      let rank, path = select t i announcements in
      (Array.map (fun _ -> path) (Digraph.out_edges g i), rank)
    end
  in
  {
    Protocol.name = "spp-bgp";
    graph = g;
    space = path_space t;
    react;
  }

let input t = Array.make t.n ()

let solutions t =
  (* Enumerate assignments of permitted paths (or no route) and keep the
     best-response fixed points. *)
  let options i = if i = 0 then [ [ 0 ] ] else [] :: t.permitted.(i) in
  let rec assignments i =
    if i = t.n then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun p -> p :: rest) (options i))
        (assignments (i + 1))
  in
  let stable assignment =
    let arr = Array.of_list assignment in
    let ok = ref true in
    for i = 1 to t.n - 1 do
      let announcements =
        Array.to_list
          (Array.map
             (fun e ->
               let j = Digraph.src t.graph e in
               (j, arr.(j)))
             (Digraph.in_edges t.graph i))
      in
      let _, best = select t i announcements in
      if best <> arr.(i) then ok := false
    done;
    !ok
  in
  List.filter_map
    (fun a -> if stable a then Some (Array.of_list a) else None)
    (assignments 0)

(* All loop-free paths from [node] to 0 along the links of [g], shortest
   first, capped for sanity. *)
let simple_paths_to_dest g node ~cap =
  let results = ref [] in
  let rec extend path visited v =
    if List.length !results < cap then
      if v = 0 then results := List.rev (0 :: path) :: !results
      else
        Array.iter
          (fun u ->
            if not (List.mem u visited) then
              extend (v :: path) (u :: visited) u)
          (Digraph.successors g v)
  in
  extend [] [ node ] node;
  List.sort
    (fun a b -> compare (List.length a) (List.length b))
    (List.map (fun p -> p) !results)

let random_instance ~seed ~n ~degree ~paths_per_node =
  if n < 2 then invalid_arg "Spp.random_instance: need n >= 2";
  let state = Random.State.make [| seed |] in
  (* Random spanning tree rooted at 0 plus extra links. *)
  let links = ref [] in
  for v = 1 to n - 1 do
    links := (v, Random.State.int state v) :: !links
  done;
  let wanted = max 0 ((degree * n / 2) - (n - 1)) in
  let attempts = ref 0 in
  let have (a, b) =
    List.exists (fun (c, d) -> (c, d) = (a, b) || (c, d) = (b, a)) !links
  in
  let added = ref 0 in
  while !added < wanted && !attempts < 20 * (wanted + 1) do
    incr attempts;
    let a = Random.State.int state n and b = Random.State.int state n in
    if a <> b && not (have (a, b)) then begin
      links := (a, b) :: !links;
      incr added
    end
  done;
  let g =
    Digraph.create ~n
      (List.sort_uniq compare
         (List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) !links))
  in
  let permitted =
    Array.init n (fun v ->
        if v = 0 then []
        else begin
          let all = simple_paths_to_dest g v ~cap:32 in
          (* Random subset, randomly ranked. *)
          let chosen =
            List.filteri
              (fun _ _ -> Random.State.int state 3 < 2)
              all
          in
          let chosen = if chosen = [] then all else chosen in
          (* Half the nodes prefer longer paths — the policy pattern that
             produces DISAGREE- and BAD-GADGET-like dependency cycles. *)
          let ranked =
            if Random.State.bool state then
              List.sort
                (fun a b -> compare (List.length b) (List.length a))
                chosen
            else
              List.sort
                (fun _ _ -> Random.State.int state 3 - 1)
                chosen
          in
          let truncated =
            List.filteri (fun i _ -> i < paths_per_node) ranked
          in
          if truncated = [] then chosen else truncated
        end)
  in
  { n; graph = g; permitted }

let good_gadget_small () =
  create
    ~links:[ (0, 1); (0, 2); (1, 2) ]
    [| []; [ [ 1; 2; 0 ]; [ 1; 0 ] ]; [ [ 2; 0 ] ] |]

let good_gadget () =
  create
    ~links:[ (0, 1); (0, 2); (0, 3); (1, 2) ]
    [|
      [];
      [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      [ [ 2; 0 ] ];
      [ [ 3; 0 ] ];
    |]

let disagree () =
  create
    ~links:[ (0, 1); (0, 2); (1, 2) ]
    [|
      [];
      [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      [ [ 2; 1; 0 ]; [ 2; 0 ] ];
    |]

let bad_gadget () =
  create
    ~links:[ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (3, 1) ]
    [|
      [];
      [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      [ [ 2; 3; 0 ]; [ 2; 0 ] ];
      [ [ 3; 1; 0 ]; [ 3; 0 ] ];
    |]
