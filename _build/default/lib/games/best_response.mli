(** Best-response dynamics as stateless computation (Sections 1.1 and 3).

    The paper observes that systems of strategic agents repeatedly
    best-responding to each other's latest actions are stateless protocols:
    a player's label on every outgoing edge is its current strategy and its
    reaction function is its best-response map. Theorem 3.1 then yields the
    game-theoretic corollary: {e two pure equilibria make convergence
    impossible under (n-1)-fair schedules}.

    Strategies are integers in [0 .. strategies-1] (one shared strategy
    space, as in the paper's formalization where labels and outputs range
    over the same action set). *)

type t = {
  graph : Stateless_graph.Digraph.t;
      (** who observes whom: an edge [i -> j] lets [j] react to [i]. *)
  strategies : int;
  best_response : int -> (int * int) array -> int;
      (** [best_response i observed] maps the latest strategies of [i]'s
          in-neighbours (as [(player, strategy)] pairs) to [i]'s unique
          best response. *)
}

(** The stateless protocol of a game: labels are strategies, outputs the
    chosen strategy. *)
val protocol : t -> ?name:string -> unit -> (unit, int) Stateless_core.Protocol.t

val input : t -> unit array

(** Pure Nash equilibria = stable labelings: enumerates all strategy
    profiles (feasible for small games) and returns those where every
    player best-responds. *)
val equilibria : t -> int array list

(** [matching_pennies ()] — 2 players, no pure equilibrium: best-response
    dynamics never label-stabilizes (synchronous run oscillates). *)
val matching_pennies : unit -> t

(** [coordination n] — [n] players on a clique who want to match the
    majority; two pure equilibria (all-0, all-1), so Theorem 3.1 applies. *)
val coordination : int -> t

(** [prisoners_dilemma ()] — unique equilibrium (defect, defect);
    best-response dynamics converges under every schedule. *)
val prisoners_dilemma : unit -> t
