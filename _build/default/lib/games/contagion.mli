(** Diffusion of technologies in social networks (Morris's contagion model,
    the paper's reference [23]) as best-response dynamics.

    Each agent plays a coordination game with its neighbours and adopts
    (strategy 1) iff at least a [threshold] fraction of its in-neighbours
    have adopted. All-adopt and none-adopt are both equilibria whenever
    the threshold is nondegenerate, so Theorem 3.1's instability corollary
    applies to every such network. *)

(** [make graph ~threshold] with [0 < threshold <= 1]. *)
val make : Stateless_graph.Digraph.t -> threshold:float -> Best_response.t

(** [seeded_config p game seeds] — the configuration where exactly the
    [seeds] announce adoption. *)
val seeded_config :
  (unit, int) Stateless_core.Protocol.t -> int list ->
  int Stateless_core.Protocol.config

(** [adopters p config] — nodes currently announcing adoption (read off
    their outgoing labels). *)
val adopters : (unit, int) Stateless_core.Protocol.t -> int Stateless_core.Protocol.config -> int list
