(** The Stable Paths Problem (Griffin–Shepherd–Wilfong) — BGP interdomain
    routing as stateless computation, the paper's flagship motivation
    (Section 1.1).

    Every node ranks a set of permitted paths to the destination (node 0).
    A BGP speaker repeatedly (1) hears its neighbours' latest route
    announcements, (2) picks its highest-ranked permitted extension, and
    (3) announces it — a reaction function mapping incoming labels to
    outgoing labels with no other state, exactly the paper's model. The
    classic gadgets calibrate the theory:

    - GOOD GADGET: unique solution, convergence under every schedule;
    - DISAGREE: two solutions — two stable labelings — so by Theorem 3.1
      route flapping is unavoidable under (n-1)-fair schedules;
    - BAD GADGET: no solution, so the protocol can never label-stabilize. *)

type t = {
  n : int;  (** nodes, destination is 0. *)
  graph : Stateless_graph.Digraph.t;
  permitted : int list list array;
      (** per node, best first; each path leads from the node to 0 along
          edges of [graph]. [permitted.(0)] is ignored (the destination
          announces [[0]]). *)
}

(** [create ~links permitted] builds the instance from undirected links;
    validates that each permitted path starts at its node, ends at 0,
    follows links, and is loop-free. *)
val create : links:(int * int) list -> int list list array -> t

(** The label space: every permitted path, the destination's [[0]], and the
    empty "no route" announcement. *)
val path_space : t -> int list Stateless_core.Label.t

(** The BGP protocol: each node announces its currently selected path; a
    node's output is the rank of its selection ([Array.length permitted]
    encodes "no route"). *)
val protocol : t -> (unit, int list) Stateless_core.Protocol.t

val input : t -> unit array

(** All solutions of the SPP instance (assignments where every node's path
    is its best response); solutions correspond to the stable labelings of
    {!protocol}. *)
val solutions : t -> int list array list

(** {2 Gadgets} *)

(** [random_instance ~seed ~n ~degree ~paths_per_node] draws a random SPP
    instance: a connected undirected link graph on [n] nodes (a random
    spanning tree plus extra links up to the average [degree]), and for
    every node a random ranked subset of at most [paths_per_node] of its
    simple paths to the destination. Used to measure how often random
    routing policies have 0 / 1 / many solutions and how that correlates
    with BGP convergence. *)
val random_instance : seed:int -> n:int -> degree:int -> paths_per_node:int -> t

val good_gadget : unit -> t

(** A 3-node variant of the good gadget, small enough for the exhaustive
    r-stabilization checker. *)
val good_gadget_small : unit -> t

val disagree : unit -> t
val bad_gadget : unit -> t
