(** Congestion control as best-response dynamics — the third networking
    instance the paper draws from Jaggard et al. (Section 1.1).

    [n] flows share a bottleneck of capacity [capacity] (in rate units).
    Each flow observes the announced rates of the others and best-responds:
    it picks the largest rate in [0 .. max_rate] that keeps the total at or
    under capacity (greedy utilization), or rate 0 if even that overshoots.
    Announcing the chosen rate on every edge of the clique makes this a
    stateless protocol; its stable labelings are the Nash equilibria of the
    one-shot game.

    With [capacity] divisible among the flows there are many equilibria
    (any exact partition of the capacity), so Theorem 3.1 predicts rate
    oscillation under (n-1)-fair schedules — the classic TCP-unfairness
    flavour of instability. *)

(** [make ~flows ~capacity ~max_rate]. *)
val make : flows:int -> capacity:int -> max_rate:int -> Best_response.t

(** Total announced rate in a configuration. *)
val total_rate :
  (unit, int) Stateless_core.Protocol.t ->
  int Stateless_core.Protocol.config ->
  int

(** The equilibria (exact best-response fixed points), via
    {!Best_response.equilibria}. *)
val equilibria : Best_response.t -> int array list
