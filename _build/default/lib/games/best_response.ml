module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type t = {
  graph : Digraph.t;
  strategies : int;
  best_response : int -> (int * int) array -> int;
}

let protocol t ?(name = "best-response") () =
  let g = t.graph in
  let react i () incoming =
    let observed =
      Array.mapi
        (fun k e -> (Digraph.src g e, incoming.(k)))
        (Digraph.in_edges g i)
    in
    let choice = t.best_response i observed in
    if choice < 0 || choice >= t.strategies then
      invalid_arg "Best_response: reply out of the strategy space";
    (Array.map (fun _ -> choice) (Digraph.out_edges g i), choice)
  in
  { Protocol.name; graph = g; space = Label.int t.strategies; react }

let input t = Array.make (Digraph.num_nodes t.graph) ()

let equilibria t =
  let n = Digraph.num_nodes t.graph in
  let rec profiles i =
    if i = n then [ [] ]
    else
      List.concat_map
        (fun rest -> List.init t.strategies (fun s -> s :: rest))
        (profiles (i + 1))
  in
  let is_equilibrium profile =
    let arr = Array.of_list profile in
    let ok = ref true in
    for i = 0 to n - 1 do
      let observed =
        Array.map
          (fun e -> (Digraph.src t.graph e, arr.(Digraph.src t.graph e)))
          (Digraph.in_edges t.graph i)
      in
      if t.best_response i observed <> arr.(i) then ok := false
    done;
    !ok
  in
  List.filter_map
    (fun p -> if is_equilibrium p then Some (Array.of_list p) else None)
    (profiles 0)

let strategy_of observed player =
  let found = ref 0 in
  Array.iter (fun (p, s) -> if p = player then found := s) observed;
  !found

let matching_pennies () =
  {
    graph = Builders.clique 2;
    strategies = 2;
    best_response =
      (fun i observed ->
        let other = strategy_of observed (1 - i) in
        (* Player 0 wants to match, player 1 wants to mismatch. *)
        if i = 0 then other else 1 - other);
  }

let coordination n =
  if n < 2 then invalid_arg "Best_response.coordination: need n >= 2";
  {
    graph = Builders.clique n;
    strategies = 2;
    best_response =
      (fun _ observed ->
        let ones = Array.fold_left (fun acc (_, s) -> acc + s) 0 observed in
        (* Match the (weak) majority of the other players, counting
           yourself out; ties go to 1. *)
        if 2 * ones >= Array.length observed then 1 else 0);
  }

let prisoners_dilemma () =
  {
    graph = Builders.clique 2;
    strategies = 2;
    (* 1 = defect is dominant. *)
    best_response = (fun _ _ -> 1);
  }
