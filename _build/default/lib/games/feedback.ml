module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Builders = Stateless_graph.Builders

let ring_oscillator n =
  if n < 2 then invalid_arg "Feedback.ring_oscillator: need n >= 2";
  {
    Protocol.name = Printf.sprintf "ring-oscillator-%d" n;
    graph = Builders.ring_uni n;
    space = Label.bool;
    react =
      (fun _ () incoming ->
        let out = not incoming.(0) in
        ([| out |], if out then 1 else 0));
  }

let nor_latch () =
  {
    Protocol.name = "nor-latch";
    graph = Builders.clique 2;
    space = Label.bool;
    react =
      (fun _ input incoming ->
        (* Each gate: NOR of the other gate's output and its own external
           line (R for gate 0, S for gate 1). *)
        let out = not (incoming.(0) || input) in
        ([| out |], if out then 1 else 0));
  }
