module Protocol = Stateless_core.Protocol
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

let make ~flows ~capacity ~max_rate =
  if flows < 2 then invalid_arg "Congestion.make: need >= 2 flows";
  if capacity < 0 || max_rate < 1 then
    invalid_arg "Congestion.make: bad capacity or max_rate";
  {
    Best_response.graph = Builders.clique flows;
    strategies = max_rate + 1;
    best_response =
      (fun _ observed ->
        let others = Array.fold_left (fun acc (_, r) -> acc + r) 0 observed in
        max 0 (min max_rate (capacity - others)));
  }

let total_rate p config =
  let g = p.Protocol.graph in
  let n = Protocol.num_nodes p in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let out = Digraph.out_edges g i in
    if Array.length out > 0 then total := !total + config.Protocol.labels.(out.(0))
  done;
  !total

let equilibria = Best_response.equilibria
