(** Asynchronous circuits with feedback loops as stateless protocols
    (Section 1.1): each gate's output wires are its edge labels and the
    gate function is its reaction function.

    Two canonical fixtures: the ring oscillator (odd cycle of inverters) has
    {e no} stable labeling, so no schedule ever label-stabilizes it; the
    cross-coupled NOR latch with both inputs low has {e two} stable
    labelings — the two stored bits — so Theorem 3.1 makes it impossible to
    guarantee settling: the hardware-designer's metastability, derived from
    the paper's impossibility theorem. *)

(** [ring_oscillator n] — [n] inverters in a unidirectional cycle; for odd
    [n] there is no stable labeling. *)
val ring_oscillator : int -> (unit, bool) Stateless_core.Protocol.t

(** [nor_latch ()] — two cross-coupled NOR gates; the node inputs are the
    external (R, S) lines. With R = S = false the latch holds either bit:
    two stable labelings. With R ≠ S the stored bit is forced: a unique
    stable labeling. *)
val nor_latch : unit -> (bool, bool) Stateless_core.Protocol.t
