module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine

type witness = {
  init_code : int;
  prefix : int list list;
  cycle : int list list;
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }

(* The explored states-graph. State ids index all vectors. *)
type 'l explored = {
  n : int;
  r : int;
  lab_count : int;
  state_of_key : (int, int) Hashtbl.t;
  keys : int Vec.t;  (* id -> lab_code * r^n + cd_code *)
  edges : int array Vec.t;  (* id -> flattened (succ, mask, changed) triples *)
  parent : int Vec.t;  (* id -> predecessor id in BFS forest, -1 at roots *)
  parent_mask : int Vec.t;
}

let ipow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let decode_state ex key =
  let cd_count = ipow ex.r ex.n in
  let lab_code = key / cd_count and cd_code = key mod cd_count in
  let countdown = Array.make ex.n 0 in
  let rest = ref cd_code in
  for i = ex.n - 1 downto 0 do
    countdown.(i) <- (!rest mod ex.r) + 1;
    rest := !rest / ex.r
  done;
  (lab_code, countdown)

let encode_state ex lab_code countdown =
  let code = ref lab_code in
  for i = 0 to ex.n - 1 do
    code := (!code * ex.r) + (countdown.(i) - 1)
  done;
  !code

let nodes_of_mask n mask =
  let rec loop i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i - 1) (i :: acc)
    else loop (i - 1) acc
  in
  loop (n - 1) []

(* Breadth-first exploration from every initialization vertex (ℓ, rⁿ). *)
let explore p ~input ~r ~max_states =
  let n = Protocol.num_nodes p in
  if n > 20 then invalid_arg "Checker: too many nodes for subset enumeration";
  match Protocol.labelings_count p with
  | None -> Error max_int
  | Some lab_count ->
      let cd_count = ipow r n in
      if
        cd_count > max_states
        || lab_count > max_states / cd_count
      then Error (if lab_count > max_int / cd_count then max_int
                  else lab_count * cd_count)
      else begin
        let ex =
          {
            n;
            r;
            lab_count;
            state_of_key = Hashtbl.create (4 * lab_count);
            keys = Vec.create ~dummy:0;
            edges = Vec.create ~dummy:[||];
            parent = Vec.create ~dummy:(-1);
            parent_mask = Vec.create ~dummy:0;
          }
        in
        let queue = Queue.create () in
        let intern key ~parent ~mask =
          match Hashtbl.find_opt ex.state_of_key key with
          | Some id -> id
          | None ->
              let id = Vec.length ex.keys in
              Hashtbl.replace ex.state_of_key key id;
              Vec.push ex.keys key;
              Vec.push ex.edges [||];
              Vec.push ex.parent parent;
              Vec.push ex.parent_mask mask;
              Queue.add id queue;
              id
        in
        let full = Array.make n r in
        for lab_code = 0 to lab_count - 1 do
          ignore (intern (encode_state ex lab_code full) ~parent:(-1) ~mask:0)
        done;
        while not (Queue.is_empty queue) do
          let id = Queue.pop queue in
          let lab_code, countdown = decode_state ex (Vec.get ex.keys id) in
          let config = Protocol.decode_config p lab_code in
          let forced = ref 0 in
          for i = 0 to n - 1 do
            if countdown.(i) = 1 then forced := !forced lor (1 lsl i)
          done;
          let out = ref [] in
          let edge_count = ref 0 in
          for mask = 1 to (1 lsl n) - 1 do
            if mask land !forced = !forced then begin
              let active = nodes_of_mask n mask in
              let next = Engine.step p ~input config ~active in
              let next_lab = Protocol.encode_config p next in
              let next_cd =
                Array.init n (fun i ->
                    if mask land (1 lsl i) <> 0 then r else countdown.(i) - 1)
              in
              let key = encode_state ex next_lab next_cd in
              let succ = intern key ~parent:id ~mask in
              let changed = if next_lab <> lab_code then 1 else 0 in
              out := changed :: mask :: succ :: !out;
              incr edge_count
            end
          done;
          Vec.set ex.edges id (Array.of_list (List.rev !out))
        done;
        Ok ex
      end

(* Iterative Tarjan over the explored graph. *)
let scc_of_explored ex =
  let count = Vec.length ex.keys in
  let index = Array.make count (-1) in
  let lowlink = Array.make count 0 in
  let on_stack = Array.make count false in
  let comp = Array.make count (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let call = Stack.create () in
  let succ_at id k = (Vec.get ex.edges id).(3 * k) in
  let degree id = Array.length (Vec.get ex.edges id) / 3 in
  for root = 0 to count - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, 0) call;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, child = Stack.pop call in
        if child < degree v then begin
          Stack.push (v, child + 1) call;
          let u = succ_at v child in
          if index.(u) < 0 then begin
            index.(u) <- !next_index;
            lowlink.(u) <- !next_index;
            incr next_index;
            Stack.push u stack;
            on_stack.(u) <- true;
            Stack.push (u, 0) call
          end
          else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let u = Stack.pop stack in
              on_stack.(u) <- false;
              comp.(u) <- !next_comp;
              if u = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  comp

(* Shortest intra-component path src -> dst as a list of activation masks. *)
let path_within_scc ex comp ~src ~dst =
  if src = dst then Some []
  else begin
    let count = Vec.length ex.keys in
    let pred = Array.make count (-1) in
    let pred_mask = Array.make count 0 in
    let queue = Queue.create () in
    pred.(src) <- src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let edges = Vec.get ex.edges v in
      let k = ref 0 in
      while (not !found) && !k < Array.length edges / 3 do
        let u = edges.(3 * !k) and mask = edges.((3 * !k) + 1) in
        if comp.(u) = comp.(src) && pred.(u) < 0 then begin
          pred.(u) <- v;
          pred_mask.(u) <- mask;
          if u = dst then found := true else Queue.add u queue
        end;
        incr k
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then acc else walk pred.(v) (pred_mask.(v) :: acc)
      in
      Some (walk dst [])
    end
  end

(* Path from a BFS root (an initialization vertex) to [id], plus the root's
   labeling code. *)
let path_from_root ex id =
  let rec walk id acc =
    if Vec.get ex.parent id < 0 then (id, acc)
    else walk (Vec.get ex.parent id) (Vec.get ex.parent_mask id :: acc)
  in
  let root, masks = walk id [] in
  let lab_code, _ = decode_state ex (Vec.get ex.keys root) in
  (lab_code, masks)

let masks_to_sets n masks = List.map (nodes_of_mask n) masks

let make_witness ex ~cycle_entry ~cycle_masks =
  let init_code, prefix_masks = path_from_root ex cycle_entry in
  {
    init_code;
    prefix = masks_to_sets ex.n prefix_masks;
    cycle = masks_to_sets ex.n cycle_masks;
  }

let check_label p ~input ~r ~max_states =
  match explore p ~input ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      (* Find a label-changing edge inside an SCC. *)
      let found = ref None in
      let count = Vec.length ex.keys in
      let id = ref 0 in
      while !found = None && !id < count do
        let edges = Vec.get ex.edges !id in
        let k = ref 0 in
        while !found = None && !k < Array.length edges / 3 do
          let u = edges.(3 * !k)
          and mask = edges.((3 * !k) + 1)
          and changed = edges.((3 * !k) + 2) in
          if changed = 1 && comp.(u) = comp.(!id) then
            found := Some (!id, u, mask);
          incr k
        done;
        incr id
      done;
      match !found with
      | None -> Stabilizing
      | Some (v, u, mask) -> (
          match path_within_scc ex comp ~src:u ~dst:v with
          | None -> assert false (* u, v lie in the same SCC *)
          | Some back ->
              Oscillating
                (make_witness ex ~cycle_entry:v ~cycle_masks:(mask :: back))))

let check_output p ~input ~r ~max_states =
  match explore p ~input ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      let count = Vec.length ex.keys in
      (* For every intra-SCC edge and activated node, record the produced
         output; two distinct outputs for the same node in one SCC witness
         output divergence. *)
      let seen : (int * int, int * (int * int)) Hashtbl.t =
        Hashtbl.create 1024
      in
      (* (scc, node) -> (output, (edge src, mask)) *)
      let conflict = ref None in
      let id = ref 0 in
      while !conflict = None && !id < count do
        let lab_code, _ = decode_state ex (Vec.get ex.keys !id) in
        let config = Protocol.decode_config p lab_code in
        let edges = Vec.get ex.edges !id in
        let k = ref 0 in
        while !conflict = None && !k < Array.length edges / 3 do
          let u = edges.(3 * !k) and mask = edges.((3 * !k) + 1) in
          if comp.(u) = comp.(!id) then
            List.iter
              (fun node ->
                if !conflict = None then begin
                  let _, y = Protocol.apply p ~input config node in
                  match Hashtbl.find_opt seen (comp.(!id), node) with
                  | None ->
                      Hashtbl.replace seen (comp.(!id), node)
                        (y, (!id, mask))
                  | Some (y0, (src0, mask0)) ->
                      if y0 <> y then
                        conflict := Some ((src0, mask0), (!id, mask), u)
                end)
              (nodes_of_mask ex.n mask);
          incr k
        done;
        incr id
      done;
      match !conflict with
      | None -> Stabilizing
      | Some ((src0, mask0), (src1, mask1), dst1) -> (
          (* Build a cycle through both conflicting edges:
             src0 -e0-> dst0 ~~> src1 -e1-> dst1 ~~> src0. *)
          let dst0 =
            let edges = Vec.get ex.edges src0 in
            let rec find k =
              if edges.((3 * k) + 1) = mask0 && comp.(edges.(3 * k)) = comp.(src0)
              then edges.(3 * k)
              else find (k + 1)
            in
            find 0
          in
          match
            ( path_within_scc ex comp ~src:dst0 ~dst:src1,
              path_within_scc ex comp ~src:dst1 ~dst:src0 )
          with
          | Some mid, Some back ->
              let cycle_masks = (mask0 :: mid) @ (mask1 :: back) in
              Oscillating (make_witness ex ~cycle_entry:src0 ~cycle_masks)
          | _ -> assert false))

let replay p ~input witness =
  let init = Protocol.decode_config p witness.init_code in
  let play config sets =
    List.fold_left
      (fun c active -> Engine.step p ~input c ~active)
      config sets
  in
  let at_cycle = play init witness.prefix in
  let start_key = Protocol.config_key p at_cycle in
  (* Walk the cycle watching for label changes and output changes. *)
  let label_changed = ref false in
  let output_changed = ref false in
  let outputs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let config = ref at_cycle in
  List.iter
    (fun active ->
      let before = Protocol.config_key p !config in
      List.iter
        (fun node ->
          let _, y = Protocol.apply p ~input !config node in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        active;
      config := Engine.step p ~input !config ~active;
      if not (String.equal before (Protocol.config_key p !config)) then
        label_changed := true)
    witness.cycle;
  let returns = String.equal start_key (Protocol.config_key p !config) in
  returns && (!label_changed || !output_changed)

let max_stabilizing_r p ~input ~r_limit ~max_states =
  let rec loop r =
    if r > r_limit then Some r_limit
    else
      match check_label p ~input ~r ~max_states with
      | Stabilizing -> loop (r + 1)
      | Oscillating _ -> Some (r - 1)
      | Too_large _ -> None
  in
  loop 1
