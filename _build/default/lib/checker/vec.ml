(* Growable arrays for the model checker's state tables. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }
let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v
