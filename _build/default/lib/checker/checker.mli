(** Exact verification of r-stabilization on small instances.

    Deciding whether a protocol is label r-stabilizing is PSPACE-complete in
    general (Theorem 4.2), but for a fixed small protocol it is a finite
    reachability question. This module builds, verbatim, the states-graph of
    the proof of Theorem 3.1: vertices are pairs [(ℓ, x)] of a labeling
    [ℓ ∈ Σ^E] and a countdown vector [x ∈ {1..r}^n] recording how many more
    steps each node may stay inactive; from each vertex there is one edge per
    admissible activation set (any nonempty [T] containing every node whose
    countdown expired). Every run of the protocol under an r-fair schedule is
    a path in this graph from an initialization vertex [(ℓ, rⁿ)], and
    conversely.

    The protocol fails to label r-stabilize iff some reachable cycle changes
    the labeling — equivalently, iff some reachable strongly connected
    component contains a label-changing transition. Output r-stabilization
    fails iff some reachable SCC activates a node with two different output
    values (any two edges of an SCC lie on a common cycle, and cycles in the
    states-graph correspond to infinitely-repeatable r-fair schedule
    segments). *)

(** An explicit non-convergence certificate: starting from the initial
    labeling (given as a mixed-radix code over edge labels, as in
    [Protocol.encode_config]), play [prefix] once, then repeat [cycle]
    forever. Each element is one activation set. *)
type witness = {
  init_code : int;
  prefix : int list list;
  cycle : int list list;
}

type verdict =
  | Stabilizing  (** Converges on every r-fair schedule, from every initial
                     labeling: exhaustively verified. *)
  | Oscillating of witness  (** A concrete diverging run. *)
  | Too_large of { needed : int }
      (** The states-graph exceeds [max_states]; no verdict. *)

(** [check_label p ~input ~r ~max_states] decides label r-stabilization of
    [p] on the given input, exhaustively over all initial labelings and all
    r-fair schedules. *)
val check_label :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  max_states:int ->
  verdict

(** [check_output p ~input ~r ~max_states] decides output r-stabilization.
    The witness cycle exhibits a node whose output changes infinitely
    often. *)
val check_output :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  max_states:int ->
  verdict

(** [replay p ~input witness ~repetitions] replays a witness on the engine
    and reports whether the labeling indeed fails to converge: the cycle
    must return to its starting labeling while changing it along the way
    (for label witnesses), making the divergence machine-checkable
    independently of the search. *)
val replay :
  ('x, 'l) Stateless_core.Protocol.t -> input:'x array -> witness -> bool

(** [max_stabilizing_r p ~input ~r_limit ~max_states] is the largest
    [r <= r_limit] such that [p] is label r-stabilizing (label r-stabilizing
    is antitone in [r]: more adversarial schedules are allowed as [r]
    grows), [0] if even [r = 1] oscillates. Returns [None] when a size
    budget was hit before reaching a verdict. *)
val max_stabilizing_r :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r_limit:int ->
  max_states:int ->
  int option
