lib/checker/checker.mli: Stateless_core
