lib/checker/checker.ml: Array Hashtbl List Queue Stack Stateless_core String Vec
