lib/checker/vec.ml: Array
