(* Minimal fixed-width table printer for the experiment harness. *)

let print_header title paper_ref =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "%s\n  [%s]\n" title paper_ref;
  Printf.printf "%s\n" (String.make 78 '-')

let print_columns widths cells =
  let line =
    String.concat " | "
      (List.map2
         (fun w c ->
           let c = if String.length c > w then String.sub c 0 w else c in
           c ^ String.make (w - String.length c) ' ')
         widths cells)
  in
  Printf.printf "%s\n" line

let print_rule widths =
  let line =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  Printf.printf "%s\n" line

let verdict ok = if ok then "ok" else "MISMATCH"

let print_note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt
