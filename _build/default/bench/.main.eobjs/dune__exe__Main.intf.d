bench/main.mli:
