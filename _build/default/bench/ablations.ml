(* Ablation experiments: remove one load-bearing design choice at a time
   and show, by measurement, that the construction breaks — evidence that
   the paper's choices are necessary, not incidental. *)

open Stateless_core
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders
module Circuit = Stateless_circuit.Circuit
module Two_counter = Stateless_counter.Two_counter
module D_counter = Stateless_counter.D_counter
module Compile = Stateless_compile.Compile

let random_labels p state =
  let card = p.Protocol.space.Label.card in
  Array.init (Protocol.num_edges p) (fun _ ->
      p.Protocol.space.Label.decode (Random.State.int state card))

(* ------------------------------------------------------------------ *)
(* A1 — Claim 5.5 requires an ODD ring                                 *)
(* ------------------------------------------------------------------ *)

(* The 2-counter reaction functions, run verbatim on an even ring. The
   whole point of oddness is that the two taps feeding node n-1's XOR have
   delays differing by the odd number n-2; on an even ring the difference
   is even and the alternation never forms. *)
let even_ring_two_counter n : (unit, bool * bool) Protocol.t =
  let g = Builders.ring_bi n in
  let react j () incoming =
    let ccw = ref (false, false) and cw = ref (false, false) in
    Array.iteri
      (fun k e ->
        let s = Digraph.src g e in
        if s = (j + n - 1) mod n then ccw := incoming.(k)
        else if s = (j + 1) mod n then cw := incoming.(k))
      (Digraph.in_edges g j);
    let out = Two_counter.bits n j ~ccw:!ccw ~cw:!cw in
    (Array.map (fun _ -> out) (Digraph.out_edges g j), 0)
  in
  {
    Protocol.name = Printf.sprintf "two-counter-even-%d" n;
    graph = g;
    space = Label.pair Label.bool Label.bool;
    react;
  }

(* A run "locks" when, after the burn-in, all nodes' second bits agree (up
   to a per-node constant) and alternate. On an even ring we can't
   calibrate corrections, so we test the strongest version any correction
   could satisfy: each node's second bit individually alternates every
   step. On odd rings this holds after burn-in; on even rings it fails. *)
let bits_alternate p n trials seed =
  let input = Array.make n () in
  let state = Random.State.make [| seed |] in
  let all = List.init n Fun.id in
  let locked = ref 0 in
  for _ = 1 to trials do
    let config =
      ref
        (Engine.run p ~input
           ~init:(Protocol.config_of_labels p (random_labels p state))
           ~schedule:(Schedule.synchronous n)
           ~steps:((6 * n) + 8))
    in
    let ok = ref true in
    let prev = ref [||] in
    for step = 0 to (2 * n) - 1 do
      let bits =
        Array.init n (fun j ->
            let e = (Digraph.out_edges p.Protocol.graph j).(0) in
            snd !config.Protocol.labels.(e))
      in
      if step > 0 then
        Array.iteri
          (fun j b -> if Bool.equal b !prev.(j) then ok := false)
          bits;
      prev := bits;
      config := Engine.step p ~input !config ~active:all
    done;
    if !ok then incr locked
  done;
  !locked

let a1 () =
  Table.print_header
    "A1  Ablation: the 2-counter needs an odd ring (Claim 5.5)"
    "run the identical reaction functions on even rings";
  let widths = [ 6; 8; 18; 8 ] in
  Table.print_columns widths [ "n"; "parity"; "locked runs"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun n ->
      let odd = n mod 2 = 1 in
      let p =
        if odd then (Two_counter.make n).Two_counter.protocol
        else even_ring_two_counter n
      in
      let locked = bits_alternate p n 25 n in
      let expected = if odd then locked = 25 else locked < 25 in
      Table.print_columns widths
        [
          string_of_int n;
          (if odd then "odd" else "even");
          Printf.sprintf "%d/25" locked;
          Table.verdict expected;
        ])
    [ 5; 7; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* A2 — Theorem 5.4 requires two-tick writes                           *)
(* ------------------------------------------------------------------ *)

let a2 () =
  Table.print_header
    "A2  Ablation: dropping the memory cell breaks the compiler (Thm 5.4)"
    "the paper's 'retain memory via communication' ping-pong";
  let widths = [ 14; 10; 14; 14; 8 ] in
  Table.print_columns widths
    [ "circuit"; "memory"; "correct runs"; "expected"; "check" ];
  Table.print_rule widths;
  let score t c =
    let n = c.Circuit.n_inputs in
    let good = ref 0 and total = ref 0 in
    List.iter
      (fun code ->
        let x = Array.init n (fun i -> code land (1 lsl i) <> 0) in
        incr total;
        match Compile.run_from t x ~seed:(code + 1) with
        | Some v when v = Circuit.eval c x -> incr good
        | _ -> ())
      (List.init (1 lsl n) Fun.id);
    (!good, !total)
  in
  List.iter
    (fun (name, c) ->
      let full = Compile.make c in
      let ablated = Compile.make ~memory:false c in
      let g2, t2 = score full c in
      let g1, t1 = score ablated c in
      Table.print_columns widths
        [ name; "yes"; Printf.sprintf "%d/%d" g2 t2; "all"; Table.verdict (g2 = t2) ];
      Table.print_columns widths
        [
          name; "no";
          Printf.sprintf "%d/%d" g1 t1;
          "failures";
          Table.verdict (g1 < t1);
        ])
    [ ("equality 4", Circuit.equality 4); ("majority 3", Circuit.majority 3) ];
  (* Single-tick writes do not change the limit behaviour (the next clock
     cycle recomputes every gate and heals the stale phase) but cost
     latency; record the measured convergence-time effect. *)
  let c = Circuit.equality 4 in
  let time t x =
    let input = Compile.ring_input t x in
    let p = t.Compile.protocol in
    let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
    Option.value ~default:(-1)
      (Engine.output_stabilization_time p ~input ~init
         ~schedule:(Schedule.synchronous t.Compile.ring_size)
         ~max_steps:(4 * Compile.convergence_bound t))
  in
  let x = [| true; false; true; false |] in
  let t2 = time (Compile.make c) x in
  let t1 = time (Compile.make ~write_ticks:1 c) x in
  Table.print_note
    "write_ticks latency on equality-4 (same input, zero init): 2 ticks -> %d steps, 1 tick -> %d steps"
    t2 t1

(* ------------------------------------------------------------------ *)
(* A3 — Claim 5.6 requires the phase-gated gap sign                    *)
(* ------------------------------------------------------------------ *)

let a3 () =
  Table.print_header
    "A3  Ablation: ungated gap publication breaks the D-counter (Claim 5.6)"
    "node 0 must choose the sign of a-b by its 2-counter phase";
  let widths = [ 6; 6; 10; 14; 8 ] in
  Table.print_columns widths
    [ "n"; "D"; "gated"; "agreeing runs"; "check" ];
  Table.print_rule widths;
  let agreement gate_g n d =
    let t = D_counter.make ~gate_g ~n ~d () in
    let p = D_counter.protocol t in
    let input = D_counter.input t in
    let state = Random.State.make [| (n * 13) + d |] in
    let all = List.init n Fun.id in
    let locked = ref 0 in
    for _ = 1 to 20 do
      let config =
        ref
          (Engine.run p ~input
             ~init:(Protocol.config_of_labels p (random_labels p state))
             ~schedule:(Schedule.synchronous n)
             ~steps:(D_counter.burn_in t))
      in
      let ok = ref true in
      let prev = ref (-1) in
      for _ = 1 to 2 * d do
        if not (D_counter.agreed t !config) then ok := false;
        let v = (D_counter.values t !config).(0) in
        if !prev >= 0 && v <> (!prev + 1) mod d then ok := false;
        prev := v;
        config := Engine.step p ~input !config ~active:all
      done;
      if !ok then incr locked
    done;
    !locked
  in
  List.iter
    (fun (n, d) ->
      let with_gate = agreement true n d in
      let without = agreement false n d in
      Table.print_columns widths
        [
          string_of_int n; string_of_int d; "yes";
          Printf.sprintf "%d/20" with_gate;
          Table.verdict (with_gate = 20);
        ];
      Table.print_columns widths
        [
          string_of_int n; string_of_int d; "no";
          Printf.sprintf "%d/20" without;
          Table.verdict (without < 20);
        ])
    [ (5, 8); (7, 6) ]

(* ------------------------------------------------------------------ *)
(* A4 — Randomized reactions escape Theorem 3.1 (future work (4))      *)
(* ------------------------------------------------------------------ *)

let a4 () =
  Table.print_header
    "A4  Randomized reactions vs. the (n-1)-fair chase schedule"
    "Section 7, future work (4): coins beat oblivious adversaries";
  let widths = [ 4; 22; 24; 8 ] in
  Table.print_columns widths [ "n"; "deterministic"; "randomized (p=0.25)"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun n ->
      let det = Clique_example.make n in
      let input = Clique_example.input n in
      let schedule = Clique_example.oscillation_schedule n in
      let det_result =
        match
          Engine.run_until_stable det ~input
            ~init:(Clique_example.oscillation_init det)
            ~schedule ~max_steps:(500 * n)
        with
        | Engine.Oscillating _ -> "oscillates forever"
        | Engine.Stabilized _ -> "converged?!"
        | Engine.Exhausted _ -> "no verdict"
      in
      let rand = Randomized.lazy_example1 n ~ignite:0.25 in
      (* Start from the same adversarial labeling: node 0 hot. *)
      let init =
        let config = Protocol.uniform_config det false in
        Array.iter
          (fun e -> config.Protocol.labels.(e) <- true)
          (Digraph.out_edges det.Protocol.graph 0);
        config
      in
      let converged, total, worst =
        Randomized.convergence_rate rand ~input ~init ~schedule
          ~seeds:(List.init 40 Fun.id) ~quiet:(4 * n) ~max_steps:(800 * n)
      in
      Table.print_columns widths
        [
          string_of_int n;
          det_result;
          Printf.sprintf "%d/%d converge (worst %d)" converged total worst;
          Table.verdict (det_result = "oscillates forever" && converged = total);
        ])
    [ 4; 5; 6 ]

let all = [ ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4) ]
