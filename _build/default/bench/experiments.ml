(* The experiment harness: one function per experiment of DESIGN.md,
   regenerating every quantitative claim of the paper (see EXPERIMENTS.md
   for the paper-vs-measured record). *)

open Stateless_core
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders
module Algorithms = Stateless_graph.Algorithms
module Checker = Stateless_checker.Checker
module Circuit = Stateless_circuit.Circuit
module Unroll = Stateless_circuit.Unroll
module Machine = Stateless_machine.Machine
module Bp = Stateless_bp.Bp
module Two_counter = Stateless_counter.Two_counter
module D_counter = Stateless_counter.D_counter
module Compile = Stateless_compile.Compile
module Snake = Stateless_snake.Snake
module SO = Stateless_pspace.String_oscillation
module Stateful = Stateless_pspace.Stateful
module Metanode = Stateless_pspace.Metanode
module Best_response = Stateless_games.Best_response
module Spp = Stateless_games.Spp
module Contagion = Stateless_games.Contagion
module Feedback = Stateless_games.Feedback
module Fooling = Stateless_lowerbound.Fooling

let parity bits = Array.fold_left (fun acc b -> acc <> b) false bits

let all_bool_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let random_labels p state =
  let card = p.Protocol.space.Label.card in
  Array.init (Protocol.num_edges p) (fun _ ->
      p.Protocol.space.Label.decode (Random.State.int state card))

(* ------------------------------------------------------------------ *)
(* E1 — Proposition 2.1: radius <= round complexity                    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  Table.print_header
    "E1  Radius lower-bounds the round complexity of output stabilization"
    "Proposition 2.1";
  let widths = [ 16; 8; 10; 8 ] in
  Table.print_columns widths [ "graph"; "radius"; "measured R"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (name, g) ->
      let n = Digraph.num_nodes g in
      let radius = Option.get (Algorithms.radius g) in
      let p = Generic.make g parity in
      (* Worst observed output-stabilization time over all inputs from the
         all-true initial labeling (adversarial for this protocol). *)
      let measured =
        List.fold_left
          (fun acc x ->
            let init =
              Protocol.uniform_config p (Array.make (n + 1) true)
            in
            match
              Engine.output_stabilization_time p ~input:x ~init
                ~schedule:(Schedule.synchronous n)
                ~max_steps:(8 * n * n)
            with
            | Some t -> max acc t
            | None -> acc)
          0 (all_bool_inputs n)
      in
      Table.print_columns widths
        [
          name;
          string_of_int radius;
          string_of_int measured;
          Table.verdict (radius <= measured);
        ])
    [
      ("ring_bi 6", Builders.ring_bi 6);
      ("ring_uni 5", Builders.ring_uni 5);
      ("clique 4", Builders.clique 4);
      ("star 5", Builders.star 5);
      ("path 5", Builders.path_bi 5);
    ]

(* ------------------------------------------------------------------ *)
(* E2 — Proposition 2.2: R <= |Σ|^|E|                                  *)
(* ------------------------------------------------------------------ *)

let e2 () =
  Table.print_header
    "E2  Round complexity never exceeds the configuration count"
    "Proposition 2.2";
  let widths = [ 18; 12; 14; 8 ] in
  Table.print_columns widths [ "protocol"; "measured R"; "|Sigma|^|E|"; "check" ];
  Table.print_rule widths;
  let row name p input =
    let bound = Option.get (Protocol.labelings_count p) in
    let measured =
      Option.value ~default:(-1)
        (Engine.synchronous_round_complexity p ~inputs:[ input ]
           ~max_steps:(4 * bound))
    in
    Table.print_columns widths
      [
        name;
        string_of_int measured;
        string_of_int bound;
        Table.verdict (measured >= 0 && measured <= bound);
      ]
  in
  List.iter
    (fun (n, q) ->
      let p = Extremal.make ~n ~q in
      row p.Protocol.name p (Extremal.input n))
    [ (3, 2); (4, 2); (3, 3) ];
  let p = Clique_example.make 3 in
  row p.Protocol.name p (Clique_example.input 3)

(* ------------------------------------------------------------------ *)
(* E3 — Proposition 2.3: the generic protocol                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  Table.print_header
    "E3  Generic protocol: every f computable with L = n+1, R <= 2n"
    "Proposition 2.3";
  let widths = [ 16; 4; 10; 10; 10; 10; 8 ] in
  Table.print_columns widths
    [ "graph"; "n"; "L (paper)"; "L (ours)"; "R bound"; "R measured"; "check" ];
  Table.print_rule widths;
  let state = Random.State.make [| 31 |] in
  List.iter
    (fun (name, g) ->
      let n = Digraph.num_nodes g in
      let p = Generic.make g parity in
      let l_measured = Label.bit_length p.Protocol.space in
      (* Worst output-stabilization time over all inputs x sampled random
         initial labelings. *)
      let measured = ref 0 in
      let converged = ref true in
      List.iter
        (fun x ->
          for _ = 1 to 8 do
            let init = Protocol.config_of_labels p (random_labels p state) in
            match
              Engine.output_stabilization_time p ~input:x ~init
                ~schedule:(Schedule.synchronous n)
                ~max_steps:(8 * n * n)
            with
            | Some t -> measured := max !measured t
            | None -> converged := false
          done)
        (all_bool_inputs n);
      Table.print_columns widths
        [
          name;
          string_of_int n;
          string_of_int (n + 1);
          string_of_int l_measured;
          string_of_int (2 * n);
          string_of_int !measured;
          Table.verdict
            (!converged && l_measured = n + 1 && !measured <= (2 * n) + 1);
        ])
    [
      ("ring_bi 5", Builders.ring_bi 5);
      ("ring_uni 4", Builders.ring_uni 4);
      ("clique 4", Builders.clique 4);
      ("torus 3x3", Builders.torus 3 3);
      ("random 6", Builders.random_strongly_connected ~seed:5 6 ~extra:4);
    ]

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 3.1 and Example 1: the fairness boundary               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  Table.print_header
    "E4  Two stable labelings forbid (n-1)-stabilization; tight at n-2"
    "Theorem 3.1, Example 1";
  let widths = [ 4; 8; 22; 22; 8 ] in
  Table.print_columns widths
    [ "n"; "stable"; "r = n-2"; "r = n-1"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun n ->
      let p = Clique_example.make n in
      let input = Clique_example.input n in
      let stable = Stability.count_stable_labelings p ~input in
      let describe r =
        match Checker.check_label p ~input ~r ~max_states:5_000_000 with
        | Checker.Stabilizing -> ("stabilizing (proof)", `Stab)
        | Checker.Oscillating w ->
            ( Printf.sprintf "oscillates (replay %b)"
                (Checker.replay p ~input w),
              `Osc )
        | Checker.Too_large _ -> (
            (* Too big to check exhaustively: exhibit the paper's explicit
               (n-1)-fair oscillation by simulation. *)
            match
              Engine.run_until_stable p ~input
                ~init:(Clique_example.oscillation_init p)
                ~schedule:(Clique_example.oscillation_schedule n)
                ~max_steps:(200 * n)
            with
            | Engine.Oscillating _ -> ("oscillates (witness run)", `Osc)
            | _ -> ("no verdict", `Unknown))
      in
      let low, low_v = describe (n - 2) in
      let high, high_v = describe (n - 1) in
      let ok =
        stable = 2 && high_v = `Osc && (low_v = `Stab || n > 4)
      in
      Table.print_columns widths
        [ string_of_int n; string_of_int stable; low; high; Table.verdict ok ])
    [ 3; 4 ];
  (* For larger n the states-graph is out of reach; the paper's explicit
     (n-1)-fair schedule still demonstrates the oscillation. *)
  let widths = [ 4; 26; 8 ] in
  Table.print_rule widths;
  Table.print_columns widths [ "n"; "(n-1)-fair chase schedule"; "check" ];
  List.iter
    (fun n ->
      let p = Clique_example.make n in
      let verdict =
        match
          Engine.run_until_stable p ~input:(Clique_example.input n)
            ~init:(Clique_example.oscillation_init p)
            ~schedule:(Clique_example.oscillation_schedule n)
            ~max_steps:(200 * n)
        with
        | Engine.Oscillating { period; _ } ->
            (Printf.sprintf "oscillates, period %d" period, true)
        | _ -> ("converged?!", false)
      in
      Table.print_columns widths
        [ string_of_int n; fst verdict; Table.verdict (snd verdict) ])
    [ 5; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 4.1, regime r <= 2^(n/2): the equality reduction       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  Table.print_header
    "E5  Verifying 1-stabilization embeds EQUALITY on 2^Omega(n) bits"
    "Theorem 4.1 / B.4; snake lengths: Abbott-Katchalski";
  let widths = [ 4; 10; 12; 8 ] in
  Table.print_columns widths [ "d"; "s(d) ours"; "s(d) known"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun d ->
      let s = List.length (Snake.example d) in
      let known = Snake.best_known d in
      Table.print_columns widths
        [
          string_of_int d; string_of_int s; string_of_int known;
          Table.verdict (s = known && Snake.is_induced_cycle d (Snake.example d));
        ])
    [ 2; 3; 4; 5 ];
  let widths = [ 4; 12; 26; 8 ] in
  Table.print_rule widths;
  Table.print_columns widths [ "d"; "case"; "synchronous behaviour"; "check" ];
  List.iter
    (fun d ->
      let len = List.length (Snake.example d) in
      let x = Array.init len (fun i -> i mod 2 = 0) in
      let run y expect_osc label =
        let t = Snake.Eq_reduction.make d ~x ~y in
        let osc = Snake.Eq_reduction.synchronously_oscillates t in
        Table.print_columns widths
          [
            string_of_int d;
            label;
            (if osc then "oscillates (not 1-stab.)" else "converges");
            Table.verdict (osc = expect_osc);
          ]
      in
      run (Array.copy x) true "x = y";
      run (Array.mapi (fun i b -> if i = 1 then not b else b) x) false
        "x <> y")
    [ 3; 4 ];
  Table.print_note
    "communication lower bound: |S| = s(n-2) >= 0.3 * 2^(n-2) bits of x,y";
  Table.print_note "exhaustive-over-labelings dichotomy verified in test_snake"

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 4.1, regime r >= 2^(n/2): the disjointness reduction   *)
(* ------------------------------------------------------------------ *)

let e6 () =
  Table.print_header
    "E6  Verifying r-stabilization embeds SET-DISJOINTNESS"
    "Theorem 4.1 / B.7";
  let widths = [ 14; 14; 10; 24; 8 ] in
  Table.print_columns widths
    [ "Alice's set"; "Bob's set"; "intersect"; "r-fair run (r = q+2)"; "check" ];
  Table.print_rule widths;
  let show v =
    "{"
    ^ String.concat ","
        (List.filteri (fun _ _ -> true)
           (List.concat
              (List.mapi (fun i b -> if b then [ string_of_int i ] else []) v)))
    ^ "}"
  in
  List.iter
    (fun (x, y) ->
      let xv = Array.of_list x and yv = Array.of_list y in
      let t = Snake.Disj_reduction.make 3 ~q:3 ~x:xv ~y:yv in
      let intersect =
        Array.exists2 (fun a b -> a && b) xv yv
      in
      let osc = Snake.Disj_reduction.oscillates t in
      Table.print_columns widths
        [
          show (Array.to_list xv);
          show (Array.to_list yv);
          string_of_bool intersect;
          (if osc then "oscillates" else "converges");
          Table.verdict (osc = intersect);
        ])
    [
      ([ true; false; true ], [ false; false; true ]);
      ([ true; false; true ], [ false; true; false ]);
      ([ true; true; true ], [ true; true; true ]);
      ([ false; false; false ], [ true; true; true ]);
      ([ true; false; false ], [ true; false; false ]);
    ]

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 4.2: PSPACE-completeness reduction chain               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  Table.print_header
    "E7  String-Oscillation <=> stateful <=> stateless (metanode) oscillation"
    "Theorem 4.2 / B.11 / B.14";
  let widths = [ 18; 10; 12; 14; 8 ] in
  Table.print_columns widths
    [ "instance"; "procedure"; "stateful"; "metanode"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (name, inst) ->
      let osc = SO.oscillates inst in
      let stateful = Stateful.of_instance inst in
      let stateful_stab = Stateful.synchronous_stabilizing stateful in
      let mn = Metanode.make stateful in
      let metanode_result =
        match SO.oscillating_start inst with
        | Some start -> (
            match Stateful.oscillation_seed inst start with
            | Some seed -> (
                match
                  Engine.run_until_stable mn.Metanode.protocol
                    ~input:(Metanode.input mn) ~init:(Metanode.lift mn seed)
                    ~schedule:
                      (Metanode.lift_schedule mn
                         (Schedule.synchronous stateful.Stateful.n))
                    ~max_steps:3000
                with
                | Engine.Oscillating _ -> `Osc
                | _ -> `Unexpected)
            | None -> `Unexpected)
        | None ->
            let p = mn.Metanode.protocol in
            let state = Random.State.make [| 4 |] in
            let all_converge = ref true in
            for _ = 1 to 15 do
              let init = Protocol.config_of_labels p (random_labels p state) in
              match
                Engine.run_until_stable p ~input:(Metanode.input mn) ~init
                  ~schedule:(Schedule.synchronous (Protocol.num_nodes p))
                  ~max_steps:3000
              with
              | Engine.Stabilized _ -> ()
              | _ -> all_converge := false
            done;
            if !all_converge then `Stab else `Unexpected
      in
      let agree =
        osc = not stateful_stab
        && (metanode_result = if osc then `Osc else `Stab)
      in
      Table.print_columns widths
        [
          name;
          (if osc then "oscillates" else "halts");
          (if stateful_stab then "stabilizing" else "oscillates");
          (match metanode_result with
          | `Osc -> "oscillates"
          | `Stab -> "stabilizing"
          | `Unexpected -> "UNEXPECTED");
          Table.verdict agree;
        ])
    [
      ("always_loop", SO.always_loop ~m:2);
      ("always_halt", SO.always_halt ~m:2);
      ("zero_loop", SO.zero_loop ~m:2);
      ("random seed=1", SO.random ~m:2 ~seed:1);
      ("random seed=5", SO.random ~m:2 ~seed:5);
    ]

(* ------------------------------------------------------------------ *)
(* E8 — Claim 5.5: the 2-counter                                       *)
(* ------------------------------------------------------------------ *)

let measure_two_counter_lock t =
  (* Worst time, over random initial labelings, until phases synchronize
     and stay synchronized-alternating for 2n further steps. *)
  let p = t.Two_counter.protocol in
  let n = t.Two_counter.n in
  let input = Two_counter.input t in
  let state = Random.State.make [| n |] in
  let worst = ref 0 in
  for _ = 1 to 30 do
    let config = ref (Protocol.config_of_labels p (random_labels p state)) in
    let locked_at = ref (-1) in
    let steps = ref 0 in
    let all = List.init n Fun.id in
    while !locked_at < 0 && !steps < 20 * n do
      (* Check: synchronized now and for the next 2n steps. *)
      let probe = ref !config in
      let ok = ref true in
      let prev = ref None in
      for _ = 0 to (2 * n) - 1 do
        if not (Two_counter.synchronized t !probe) then ok := false;
        let ph = (Two_counter.phases t !probe).(0) in
        (match !prev with
        | Some q when Bool.equal q ph -> ok := false
        | _ -> ());
        prev := Some ph;
        probe := Engine.step p ~input !probe ~active:all
      done;
      if !ok then locked_at := !steps
      else begin
        config := Engine.step p ~input !config ~active:all;
        incr steps
      end
    done;
    worst := max !worst (if !locked_at < 0 then max_int else !locked_at)
  done;
  !worst

let e8 () =
  Table.print_header "E8  The stateless 2-counter on odd rings"
    "Claim 5.5";
  let widths = [ 4; 10; 12; 12; 8 ] in
  Table.print_columns widths
    [ "n"; "L (bits)"; "lock time"; "burn-in bnd"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun n ->
      let t = Two_counter.make n in
      let lock = measure_two_counter_lock t in
      Table.print_columns widths
        [
          string_of_int n;
          string_of_int (Label.bit_length t.Two_counter.protocol.Protocol.space);
          string_of_int lock;
          string_of_int (Two_counter.burn_in t);
          Table.verdict (lock <= Two_counter.burn_in t);
        ])
    [ 3; 5; 7; 9; 11 ]

(* ------------------------------------------------------------------ *)
(* E9 — Claim 5.6: the D-counter                                       *)
(* ------------------------------------------------------------------ *)

let measure_d_counter_lock t =
  let p = D_counter.protocol t in
  let n = t.D_counter.n and d = t.D_counter.d in
  let input = D_counter.input t in
  let state = Random.State.make [| (n * 7) + d |] in
  let worst = ref 0 in
  let all = List.init n Fun.id in
  for _ = 1 to 20 do
    let config = ref (Protocol.config_of_labels p (random_labels p state)) in
    let locked_at = ref (-1) in
    let steps = ref 0 in
    while !locked_at < 0 && !steps < 30 * n do
      let probe = ref !config in
      let ok = ref true in
      let prev = ref (-1) in
      for _ = 0 to (2 * d) - 1 do
        if not (D_counter.agreed t !probe) then ok := false;
        let v = (D_counter.values t !probe).(0) in
        if !prev >= 0 && v <> (!prev + 1) mod d then ok := false;
        prev := v;
        probe := Engine.step p ~input !probe ~active:all
      done;
      if !ok then locked_at := !steps
      else begin
        config := Engine.step p ~input !config ~active:all;
        incr steps
      end
    done;
    worst := max !worst (if !locked_at < 0 then max_int else !locked_at)
  done;
  !worst

let e9 () =
  Table.print_header "E9  The stateless D-counter: a global clock"
    "Claim 5.6 (paper: R = 4n, L = 2 + 3 log D)";
  let widths = [ 4; 4; 10; 10; 10; 10; 8 ] in
  Table.print_columns widths
    [ "n"; "D"; "L paper"; "L ours"; "R paper"; "lock time"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (n, d) ->
      let t = D_counter.make ~n ~d () in
      let bits v =
        let rec go acc cap = if cap >= v then acc else go (acc + 1) (2 * cap) in
        go 0 1
      in
      let l_paper = 2 + (3 * bits d) in
      let lock = measure_d_counter_lock t in
      Table.print_columns widths
        [
          string_of_int n;
          string_of_int d;
          string_of_int l_paper;
          string_of_int (D_counter.label_bits t);
          string_of_int (4 * n);
          string_of_int lock;
          Table.verdict (D_counter.label_bits t = l_paper && lock <= 4 * n + 8);
        ])
    [ (3, 4); (5, 8); (5, 16); (7, 10); (9, 32); (11, 6) ]

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 5.2 and Lemma C.2: unidirectional rings ~ L/poly      *)
(* ------------------------------------------------------------------ *)

let e10 () =
  Table.print_header
    "E10a Extremal round complexity on the unidirectional ring"
    "Lemma C.2: R = n(q-1) achieved, R <= n q in general";
  let widths = [ 4; 4; 12; 12; 12; 8 ] in
  Table.print_columns widths
    [ "n"; "q"; "R predicted"; "R measured"; "bound n*q"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (n, q) ->
      let p = Extremal.make ~n ~q in
      let measured =
        Option.value ~default:(-1)
          (Engine.label_stabilization_time p ~input:(Extremal.input n)
             ~init:(Extremal.slow_init p)
             ~schedule:(Schedule.synchronous n)
             ~max_steps:(4 * n * q))
      in
      let predicted = Extremal.predicted_rounds ~n ~q in
      Table.print_columns widths
        [
          string_of_int n;
          string_of_int q;
          string_of_int predicted;
          string_of_int measured;
          string_of_int (Extremal.upper_bound ~n ~q);
          Table.verdict
            (measured >= predicted && measured <= Extremal.upper_bound ~n ~q);
        ])
    [ (3, 2); (4, 3); (5, 4); (6, 5); (8, 3) ];

  Table.print_header
    "E10b Machines with advice run on the unidirectional ring"
    "Theorem 5.2 (L/poly side): labels O(log), self-stabilizing";
  let widths = [ 16; 4; 6; 10; 12; 12; 8 ] in
  Table.print_columns widths
    [ "machine"; "n"; "|Z|"; "L (bits)"; "conv bound"; "worst conv"; "check" ];
  Table.print_rule widths;
  let state = Random.State.make [| 77 |] in
  List.iter
    (fun m ->
      let p = Machine.protocol_of_machine m in
      let n = m.Machine.n in
      let bound = Machine.convergence_bound m in
      let worst = ref 0 in
      let correct = ref true in
      List.iter
        (fun x ->
          let init = Protocol.config_of_labels p (random_labels p state) in
          (match
             Engine.outputs_after_convergence p ~input:x ~init
               ~schedule:(Schedule.synchronous n) ~max_steps:(2 * bound)
           with
          | Some outs ->
              let expect = if Machine.run m x then 1 else 0 in
              if not (Array.for_all (fun y -> y = expect) outs) then
                correct := false
          | None -> correct := false);
          match
            Engine.output_stabilization_time p ~input:x ~init
              ~schedule:(Schedule.synchronous n) ~max_steps:(2 * bound)
          with
          | Some t -> worst := max !worst t
          | None -> correct := false)
        (all_bool_inputs n);
      Table.print_columns widths
        [
          m.Machine.name;
          string_of_int n;
          string_of_int m.Machine.configs;
          string_of_int (Label.bit_length p.Protocol.space);
          string_of_int bound;
          string_of_int !worst;
          Table.verdict (!correct && !worst <= bound);
        ])
    [
      Machine.parity 4;
      Machine.majority 3;
      Machine.mod_count 4 3;
      Machine.first_equals_last 4;
      Machine.with_advice 4 [| true; false; true; true |];
    ];

  Table.print_header
    "E10c Branching programs <-> unidirectional ring protocols"
    "Theorem 5.2 (both directions)";
  let widths = [ 16; 10; 14; 14; 8 ] in
  Table.print_columns widths
    [ "program"; "BP size"; "ring L bits"; "roundtrip"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (name, bp) ->
      let p = Bp.protocol_of_bp bp in
      let bp' =
        Bp.of_uni_protocol p ~start:(p.Protocol.space.Label.decode 0)
      in
      let same =
        List.for_all
          (fun x -> Bp.eval bp x = Bp.eval bp' x)
          (all_bool_inputs bp.Bp.n_vars)
      in
      Table.print_columns widths
        [
          name;
          string_of_int (Bp.size bp);
          string_of_int (Label.bit_length p.Protocol.space);
          (if same then "function preserved" else "BROKEN");
          Table.verdict same;
        ])
    [
      ("parity 3", Bp.parity 3);
      ("majority 3", Bp.majority 3);
      ("equality 4", Bp.equality 4);
    ]

(* ------------------------------------------------------------------ *)
(* E11 — Theorem 5.4: bidirectional rings ~ P/poly                     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  Table.print_header
    "E11a Circuits compiled onto bidirectional rings (P/poly side)"
    "Theorem 5.4: ring O(|C|), labels 6 + 3 log D, self-stabilizing";
  let widths = [ 12; 6; 6; 6; 10; 12; 10; 8 ] in
  Table.print_columns widths
    [ "circuit"; "|C|"; "ring"; "D"; "L (bits)"; "conv bound"; "inputs ok"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (name, c) ->
      let t = Compile.make c in
      let n = c.Circuit.n_inputs in
      let ok = ref 0 and total = ref 0 in
      List.iteri
        (fun idx x ->
          incr total;
          match Compile.run_from t x ~seed:(idx + 1) with
          | Some v when v = Circuit.eval c x -> incr ok
          | _ -> ())
        (all_bool_inputs n);
      Table.print_columns widths
        [
          name;
          string_of_int (Circuit.size c);
          string_of_int t.Compile.ring_size;
          string_of_int t.Compile.clock_period;
          string_of_int (Compile.label_bits t);
          string_of_int (Compile.convergence_bound t);
          Printf.sprintf "%d/%d" !ok !total;
          Table.verdict (!ok = !total);
        ])
    [
      ("parity 3", Circuit.parity 3);
      ("majority 3", Circuit.majority 3);
      ("equality 4", Circuit.equality 4);
      ("or_all 4", Circuit.or_all 4);
      ("random s=9", Circuit.random ~seed:9 ~n_inputs:4 ~size:8);
    ];

  Table.print_header
    "E11b Protocols unrolled into circuits (converse direction)"
    "Theorem 5.4: T-round synchronous run = layered circuit";
  let widths = [ 22; 10; 12; 12; 8 ] in
  Table.print_columns widths
    [ "protocol"; "rounds T"; "circuit size"; "computes f"; "check" ];
  Table.print_rule widths;
  let g = Builders.ring_bi 3 in
  let p = Generic.make g parity in
  let rounds = 7 in
  let circuit =
    Unroll.circuit_of_protocol p ~rounds ~init:(Array.make 4 false) ~node:0
  in
  let same =
    List.for_all
      (fun x -> Circuit.eval circuit x = parity x)
      (all_bool_inputs 3)
  in
  Table.print_columns widths
    [
      "generic parity ring3";
      string_of_int rounds;
      string_of_int (Circuit.size circuit);
      string_of_bool same;
      Table.verdict same;
    ]

(* ------------------------------------------------------------------ *)
(* E12 — Theorem 5.10: the counting lower bound                        *)
(* ------------------------------------------------------------------ *)

let e12 () =
  Table.print_header
    "E12  Some function needs labels of n/4k bits on degree-k graphs"
    "Theorem 5.10 (vs. the generic upper bound n + 1 of Prop 2.3)";
  let widths = [ 6; 6; 14; 14; 8 ] in
  Table.print_columns widths
    [ "n"; "k"; "lower n/4k"; "upper n+1"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (n, k) ->
      let lower = Fooling.counting_bound ~n ~k in
      Table.print_columns widths
        [
          string_of_int n;
          string_of_int k;
          Printf.sprintf "%.2f" lower;
          string_of_int (n + 1);
          Table.verdict (lower <= float_of_int (n + 1));
        ])
    [ (16, 2); (64, 2); (256, 4); (1024, 4); (4096, 8) ];
  Table.print_note
    "k=2 covers both ring topologies; the gap lower..upper is where Section 5's";
  Table.print_note
    "log-label constructions live for easy functions."

(* ------------------------------------------------------------------ *)
(* E13 — Theorem 6.2, Corollaries 6.3/6.4: fooling-set lower bounds    *)
(* ------------------------------------------------------------------ *)

let e13 () =
  Table.print_header
    "E13  Fooling sets: label lower bounds for Eq and Maj on the ring"
    "Theorem 6.2, Corollaries 6.3 / 6.4";
  let widths = [ 10; 4; 9; 10; 10; 10; 8 ] in
  Table.print_columns widths
    [ "function"; "n"; "|S|"; "verified"; "bound"; "paper"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun n ->
      let s = Fooling.equality_fooling n in
      let verified =
        Fooling.verify Fooling.equality_fn ~n s
        && Fooling.constant_on_cut (Builders.ring_bi n) ~m:(n / 2) s
      in
      let bound = Fooling.bound s ~cut:4 in
      Table.print_columns widths
        [
          "Eq"; string_of_int n;
          string_of_int (List.length s.Fooling.pairs);
          string_of_bool verified;
          Printf.sprintf "%.2f" bound;
          Printf.sprintf "%.2f" (Fooling.equality_paper_bound n);
          Table.verdict (verified && bound > 0.0);
        ])
    [ 6; 8; 10; 12; 16 ];
  List.iter
    (fun n ->
      let s = Fooling.majority_fooling n in
      let verified = Fooling.verify Fooling.majority_fn ~n s in
      let bound = Fooling.bound s ~cut:4 in
      Table.print_columns widths
        [
          "Maj"; string_of_int n;
          string_of_int (List.length s.Fooling.pairs);
          string_of_bool verified;
          Printf.sprintf "%.2f" bound;
          Printf.sprintf "%.2f" (Fooling.majority_paper_bound n);
          Table.verdict (verified && bound > 0.0);
        ])
    [ 6; 8; 10; 12; 16 ];
  Table.print_note
    "Eq: our set pins 2 coordinates (bound (n-4)/8 vs paper (n-2)/8) — same";
  Table.print_note
    "linear asymptotics; Maj matches the paper's log(n/2)/4 exactly."

(* ------------------------------------------------------------------ *)
(* E14 — BGP / Stable Paths gadgets                                    *)
(* ------------------------------------------------------------------ *)

let e14 () =
  Table.print_header
    "E14  BGP as stateless best response: the GSW gadget spectrum"
    "Section 1.1; Theorem 3.1 corollary for routing";
  let widths = [ 10; 10; 18; 20; 8 ] in
  Table.print_columns widths
    [ "gadget"; "solutions"; "synchronous"; "checker r=2"; "check" ];
  Table.print_rule widths;
  List.iter
    (fun (name, spp, expect_solutions, expect_sync, expect_checker) ->
      let p = Spp.protocol spp in
      let input = Spp.input spp in
      let solutions = List.length (Spp.solutions spp) in
      let sync =
        match
          Engine.run_until_stable p ~input
            ~init:(Protocol.uniform_config p [])
            ~schedule:(Schedule.synchronous spp.Spp.n)
            ~max_steps:2000
        with
        | Engine.Stabilized _ -> "converges"
        | Engine.Oscillating _ -> "flaps"
        | Engine.Exhausted _ -> "unknown"
      in
      let checker =
        match Checker.check_label p ~input ~r:2 ~max_states:5_000_000 with
        | Checker.Stabilizing -> "2-stabilizing"
        | Checker.Oscillating _ -> "flapping schedule"
        | Checker.Too_large _ -> "too large"
      in
      Table.print_columns widths
        [
          name;
          string_of_int solutions;
          sync;
          checker;
          Table.verdict
            (solutions = expect_solutions && sync = expect_sync
           && checker = expect_checker);
        ])
    [
      ("GOOD", Spp.good_gadget (), 1, "converges", "too large");
      ("GOOD small", Spp.good_gadget_small (), 1, "converges", "2-stabilizing");
      ("DISAGREE", Spp.disagree (), 2, "flaps", "flapping schedule");
      ("BAD", Spp.bad_gadget (), 0, "flaps", "too large");
    ];
  (* BAD GADGET's state space defeats the exhaustive checker, but zero
     solutions already witness divergence under every fair schedule. *)
  let spp = Spp.bad_gadget () in
  let p = Spp.protocol spp in
  (match
     Engine.run_until_stable p ~input:(Spp.input spp)
       ~init:(Protocol.uniform_config p [])
       ~schedule:(Schedule.random_fair ~seed:3 ~r:3 spp.Spp.n)
       ~max_steps:5000
   with
  | Engine.Exhausted _ | Engine.Oscillating _ ->
      Table.print_note "BAD gadget under a random 3-fair schedule: still flapping after 5000 steps (expected)"
  | Engine.Stabilized _ ->
      Table.print_note "BAD gadget converged?! (no solution exists — MISMATCH)")

(* ------------------------------------------------------------------ *)
(* E15 — Contagion / coordination instability                          *)
(* ------------------------------------------------------------------ *)

let e15 () =
  Table.print_header
    "E15  Technology diffusion: equilibria, cascades, and churn"
    "Section 1.1 (Morris contagion); Theorem 3.1 corollary";
  let widths = [ 16; 12; 20; 8 ] in
  Table.print_columns widths [ "network"; "equilibria"; "behaviour"; "check" ];
  Table.print_rule widths;
  (* Full cascade on a grid. *)
  let g = Builders.grid 3 4 in
  let game = Contagion.make g ~threshold:0.33 in
  let p = Best_response.protocol game () in
  let input = Best_response.input game in
  let cascade =
    match
      Engine.run_until_stable p ~input
        ~init:(Contagion.seeded_config p [ 0; 1; 4; 5 ])
        ~schedule:(Schedule.synchronous 12) ~max_steps:200
    with
    | Engine.Stabilized { config; _ } ->
        List.length (Contagion.adopters p config)
    | _ -> -1
  in
  Table.print_columns widths
    [
      "grid 3x4"; "(>= 2)";
      Printf.sprintf "cascade to %d/12" cascade;
      Table.verdict (cascade = 12);
    ];
  (* Instability on the small ring, exhaustively. *)
  let ring = Builders.ring_bi 3 in
  let rgame = Contagion.make ring ~threshold:0.5 in
  let rp = Best_response.protocol rgame () in
  let rinput = Best_response.input rgame in
  let equilibria = Stability.count_stable_labelings rp ~input:rinput in
  let churn =
    match Checker.check_label rp ~input:rinput ~r:2 ~max_states:2_000_000 with
    | Checker.Oscillating w ->
        if Checker.replay rp ~input:rinput w then "2-fair churn (replayed)"
        else "2-fair churn"
    | Checker.Stabilizing -> "stabilizing?!"
    | Checker.Too_large _ -> "too large"
  in
  Table.print_columns widths
    [
      "ring_bi 3";
      string_of_int equilibria;
      churn;
      Table.verdict (equilibria = 2 && churn = "2-fair churn (replayed)");
    ];
  (* The asynchronous-circuit instances from the same corollary. *)
  let latch = Feedback.nor_latch () in
  let stable_latch =
    Stability.count_stable_labelings latch ~input:[| false; false |]
  in
  let latch_verdict =
    match
      Checker.check_label latch ~input:[| false; false |] ~r:1
        ~max_states:100_000
    with
    | Checker.Oscillating _ -> "metastable"
    | _ -> "settles?!"
  in
  Table.print_columns widths
    [
      "NOR latch";
      string_of_int stable_latch;
      latch_verdict;
      Table.verdict (stable_latch = 2 && latch_verdict = "metastable");
    ];
  let osc = Feedback.ring_oscillator 3 in
  let stable_osc = Stability.count_stable_labelings osc ~input:(Array.make 3 ()) in
  Table.print_columns widths
    [
      "inverter ring 3";
      string_of_int stable_osc;
      "free-running clock";
      Table.verdict (stable_osc = 0);
    ]

(* ------------------------------------------------------------------ *)
(* E16 — Section 7, future work (3): other topologies                  *)
(* ------------------------------------------------------------------ *)

let e16 () =
  Table.print_header
    "E16  The generic protocol across topologies (future work 3)"
    "Prop 2.3 on hypercube, torus, trees, de Bruijn, chordal rings";
  let widths = [ 18; 4; 6; 8; 10; 10; 8 ] in
  Table.print_columns widths
    [ "graph"; "n"; "radius"; "L = n+1"; "R bound 2n"; "R measured"; "check" ];
  Table.print_rule widths;
  let state = Random.State.make [| 63 |] in
  List.iter
    (fun (name, g) ->
      let n = Digraph.num_nodes g in
      let p = Generic.make g parity in
      let radius = Option.get (Algorithms.radius g) in
      let measured = ref 0 in
      let converged = ref true in
      (* Random inputs x random initial labelings. *)
      for _ = 1 to 12 do
        let x = Array.init n (fun _ -> Random.State.bool state) in
        let init = Protocol.config_of_labels p (random_labels p state) in
        match
          Engine.output_stabilization_time p ~input:x ~init
            ~schedule:(Schedule.synchronous n)
            ~max_steps:(8 * n * n)
        with
        | Some t -> measured := max !measured t
        | None -> converged := false
      done;
      Table.print_columns widths
        [
          name;
          string_of_int n;
          string_of_int radius;
          string_of_int (n + 1);
          string_of_int (2 * n);
          string_of_int !measured;
          Table.verdict
            (!converged && !measured <= (2 * n) + 1 && radius <= !measured);
        ])
    [
      ("hypercube Q3", Builders.hypercube 3);
      ("torus 3x4", Builders.torus 3 4);
      ("binary tree d3", Builders.binary_tree 3);
      ("de Bruijn B(2,3)", Builders.de_bruijn 2 3);
      ("circulant 9:{1,3}", Builders.circulant 9 [ 1; 3; -1 ]);
      ("star 8", Builders.star 8);
    ]

(* ------------------------------------------------------------------ *)
(* E17 — Self-stabilization under transient faults                     *)
(* ------------------------------------------------------------------ *)

let e17 () =
  Table.print_header
    "E17  Transient-fault recovery (the promise of Section 2.2, measured)"
    "corrupt 100% of the labels in steady state; outputs must return";
  let widths = [ 24; 12; 12; 14; 8 ] in
  Table.print_columns widths
    [ "protocol"; "first conv"; "recovery"; "same outputs"; "check" ];
  Table.print_rule widths;
  let row name p input init schedule max_steps =
    let timing =
      Fault.recovery_time p ~input ~init ~schedule ~seed:7 ~fraction:1.0
        ~max_steps
    in
    let same =
      Fault.recovers_to_same_outputs p ~input ~init ~schedule ~seed:7
        ~fraction:1.0 ~max_steps
    in
    match (timing, same) with
    | Some (first, recovery), Some same ->
        Table.print_columns widths
          [
            name;
            string_of_int first;
            string_of_int recovery;
            string_of_bool same;
            Table.verdict same;
          ]
    | _ ->
        Table.print_columns widths
          [ name; "-"; "-"; "no recovery"; Table.verdict false ]
  in
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  row "generic parity ring5" p
    [| true; false; true; true; false |]
    (Protocol.uniform_config p (Array.make 6 false))
    (Schedule.synchronous 5) 400;
  let m = Machine.parity 4 in
  let mp = Machine.protocol_of_machine m in
  row "machine parity ring4" mp
    [| true; true; false; true |]
    (Protocol.uniform_config mp (mp.Protocol.space.Label.decode 0))
    (Schedule.synchronous 4)
    (2 * Machine.convergence_bound m);
  let t = Compile.make (Circuit.majority 3) in
  let cp = t.Compile.protocol in
  row "compiled majority3" cp
    (Compile.ring_input t [| true; false; true |])
    (Protocol.uniform_config cp (cp.Protocol.space.Label.decode 0))
    (Schedule.synchronous t.Compile.ring_size)
    (* The full system is eventually periodic with period 4D (counter
       phase x clock), so certifying the oscillation needs transient +
       period steps. *)
    (4 * Compile.convergence_bound t);
  let dc = D_counter.make ~n:5 ~d:8 () in
  let dp = D_counter.protocol dc in
  (* The counter's outputs tick forever, so measure re-agreement instead:
     corrupt and check the views re-lock. *)
  let input = D_counter.input dc in
  let steady =
    Engine.run dp ~input
      ~init:(Protocol.uniform_config dp (dp.Protocol.space.Label.decode 0))
      ~schedule:(Schedule.synchronous 5)
      ~steps:(D_counter.burn_in dc)
  in
  let damaged = Fault.corrupt dp ~seed:7 ~fraction:1.0 steady in
  let relocked =
    let config =
      ref
        (Engine.run dp ~input ~init:damaged ~schedule:(Schedule.synchronous 5)
           ~steps:(D_counter.burn_in dc))
    in
    let ok = ref true in
    for _ = 1 to 8 do
      if not (D_counter.agreed dc !config) then ok := false;
      config :=
        Engine.step dp ~input !config ~active:(List.init 5 Fun.id)
    done;
    !ok
  in
  Table.print_columns widths
    [
      "d-counter n=5 D=8";
      string_of_int (D_counter.burn_in dc);
      string_of_int (D_counter.burn_in dc);
      string_of_bool relocked;
      Table.verdict relocked;
    ]

(* ------------------------------------------------------------------ *)
(* E18 — Random routing policies: solutions vs. convergence            *)
(* ------------------------------------------------------------------ *)

let e18 () =
  Table.print_header
    "E18  Random SPP instances: how often is BGP safe?"
    "solutions = stable labelings (Thm 3.1's hypothesis in the wild)";
  let widths = [ 12; 10; 14; 16; 8 ] in
  Table.print_columns widths
    [ "solutions"; "instances"; "sync converges"; "rnd-fair conv."; "check" ];
  Table.print_rule widths;
  let buckets = Hashtbl.create 4 in
  let record key sync fair =
    let a, b, c =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt buckets key)
    in
    Hashtbl.replace buckets key
      (a + 1, (b + if sync then 1 else 0), (c + if fair then 1 else 0))
  in
  for seed = 1 to 40 do
    let spp = Spp.random_instance ~seed ~n:5 ~degree:3 ~paths_per_node:2 in
    let p = Spp.protocol spp in
    let input = Spp.input spp in
    let solutions = List.length (Spp.solutions spp) in
    let run schedule =
      match
        Engine.run_until_stable p ~input
          ~init:(Protocol.uniform_config p [])
          ~schedule ~max_steps:2000
      with
      | Engine.Stabilized _ -> true
      | Engine.Oscillating _ | Engine.Exhausted _ -> false
    in
    let sync = run (Schedule.synchronous spp.Spp.n) in
    let fair = run (Schedule.random_fair ~seed:(seed * 17) ~r:3 spp.Spp.n) in
    let key =
      if solutions = 0 then "0" else if solutions = 1 then "1" else ">=2"
    in
    record key sync fair
  done;
  List.iter
    (fun key ->
      match Hashtbl.find_opt buckets key with
      | None -> ()
      | Some (total, sync, fair) ->
          (* Zero solutions forbid convergence; with solutions, runs may
             or may not find them. *)
          let consistent =
            if key = "0" then sync = 0 && fair = 0 else true
          in
          Table.print_columns widths
            [
              key;
              string_of_int total;
              Printf.sprintf "%d/%d" sync total;
              Printf.sprintf "%d/%d" fair total;
              Table.verdict consistent;
            ])
    [ "0"; "1"; ">=2" ];
  (if Hashtbl.mem buckets "0" then
     Table.print_note
       "0-solution instances cannot converge (Thm 3.1 hypothesis vacuous: no fixed point)"
   else
     Table.print_note
       "no 0-solution instance in this sample: random policies are rarely BAD-gadget-like");
  Table.print_note
    "the engineered no-solution case is E14's BAD gadget; >=2 solutions risk DISAGREE-style flapping."

(* ------------------------------------------------------------------ *)
(* E19 — Silence: the communication dividend of label stabilization    *)
(* ------------------------------------------------------------------ *)

let e19 () =
  Table.print_header
    "E19  Label stabilization = silence (Section 1.4's silent algorithms)"
    "label changes per synchronous round, after output convergence";
  let widths = [ 24; 8; 14; 18; 8 ] in
  Table.print_columns widths
    [ "protocol"; "edges"; "stabilizes"; "changes/round"; "check" ];
  Table.print_rule widths;
  let changes_per_round p input init warmup =
    let n = Protocol.num_nodes p in
    let all = List.init n Fun.id in
    let config =
      ref (Engine.run p ~input ~init ~schedule:(Schedule.synchronous n)
             ~steps:warmup)
    in
    let total = ref 0 in
    let rounds = 20 in
    for _ = 1 to rounds do
      let next = Engine.step p ~input !config ~active:all in
      Array.iteri
        (fun e l ->
          if
            p.Protocol.space.Label.encode l
            <> p.Protocol.space.Label.encode next.Protocol.labels.(e)
          then incr total)
        !config.Protocol.labels;
      config := next
    done;
    float_of_int !total /. float_of_int rounds
  in
  let row name p input init warmup ~expect_silent =
    let rate = changes_per_round p input init warmup in
    let silent = rate = 0.0 in
    Table.print_columns widths
      [
        name;
        string_of_int (Protocol.num_edges p);
        (if silent then "labels" else "outputs only");
        Printf.sprintf "%.1f" rate;
        Table.verdict (Bool.equal silent expect_silent);
      ]
  in
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  row "generic parity ring5" p
    [| true; false; true; false; true |]
    (Protocol.uniform_config p (Array.make 6 true))
    40 ~expect_silent:true;
  let m = Machine.parity 4 in
  let mp = Machine.protocol_of_machine m in
  row "machine parity ring4" mp
    [| true; false; true; true |]
    (Protocol.uniform_config mp (mp.Protocol.space.Label.decode 0))
    (2 * Machine.convergence_bound m)
    ~expect_silent:false;
  let dc = D_counter.make ~n:5 ~d:8 () in
  let dp = D_counter.protocol dc in
  row "d-counter n=5 D=8" dp (D_counter.input dc)
    (Protocol.uniform_config dp (dp.Protocol.space.Label.decode 0))
    (D_counter.burn_in dc)
    ~expect_silent:false;
  let t = Compile.make (Circuit.parity 3) in
  let cp = t.Compile.protocol in
  row "compiled parity3" cp
    (Compile.ring_input t [| true; false; true |])
    (Protocol.uniform_config cp (cp.Protocol.space.Label.decode 0))
    (2 * Compile.convergence_bound t)
    ~expect_silent:false;
  Table.print_note
    "the Prop 2.3 protocol is silent after convergence (0 label changes);";
  Table.print_note
    "the Section 5 log-label constructions pay perpetual clocking traffic."

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19);
  ]
