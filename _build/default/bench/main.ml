(* Benchmark & experiment harness.

   Running this executable regenerates every quantitative claim of the
   paper (experiments E1..E15, one table each — see DESIGN.md for the
   experiment index and EXPERIMENTS.md for paper-vs-measured), then runs a
   Bechamel micro-benchmark suite over the core computational kernels. *)

open Bechamel
open Toolkit
module Builders = Stateless_graph.Builders
module Circuit = Stateless_circuit.Circuit
module Bp = Stateless_bp.Bp
module Snake = Stateless_snake.Snake
module Checker = Stateless_checker.Checker
open Stateless_core

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the computational kernels                       *)
(* ------------------------------------------------------------------ *)

let parity bits = Array.fold_left (fun acc b -> acc <> b) false bits

let bench_engine_step =
  (* One synchronous step of the Prop 2.3 generic protocol on a 64-ring. *)
  let n = 60 in
  let g = Builders.ring_bi n in
  let p = Generic.make g parity in
  let input = Array.init n (fun i -> i mod 3 = 0) in
  let config = Protocol.uniform_config p (Array.make (n + 1) false) in
  let active = List.init n Fun.id in
  Test.make ~name:"engine/step generic ring60"
    (Staged.stage (fun () -> ignore (Engine.step p ~input config ~active)))

let bench_engine_stabilize =
  (* Full synchronous stabilization of the generic protocol on a 16-ring. *)
  let n = 16 in
  let g = Builders.ring_bi n in
  let p = Generic.make g parity in
  let input = Array.init n (fun i -> i mod 2 = 0) in
  let init = Protocol.uniform_config p (Array.make (n + 1) true) in
  let schedule = Schedule.synchronous n in
  Test.make ~name:"engine/stabilize generic ring16"
    (Staged.stage (fun () ->
         ignore
           (Engine.run_until_stable p ~input ~init ~schedule
              ~max_steps:(4 * n * n))))

let bench_checker =
  (* Exhaustive label 2-stabilization check of Example 1 on K_3. *)
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  Test.make ~name:"checker/example1 n=3 r=2"
    (Staged.stage (fun () ->
         ignore (Checker.check_label p ~input ~r:2 ~max_states:1_000_000)))

let bench_circuit_eval =
  let c = Circuit.majority 64 in
  let x = Array.init 64 (fun i -> i mod 2 = 0) in
  Test.make ~name:"circuit/eval majority64"
    (Staged.stage (fun () -> ignore (Circuit.eval c x)))

let bench_bp_eval =
  let bp = Bp.majority 64 in
  let x = Array.init 64 (fun i -> i mod 3 = 0) in
  Test.make ~name:"bp/eval majority64"
    (Staged.stage (fun () -> ignore (Bp.eval bp x)))

let bench_snake_search =
  Test.make ~name:"snake/search d=4 exact"
    (Staged.stage (fun () -> ignore (Snake.search 4 ~node_budget:max_int)))

let bench_counter_step =
  let t = Stateless_counter.D_counter.make ~n:9 ~d:16 () in
  let p = Stateless_counter.D_counter.protocol t in
  let input = Stateless_counter.D_counter.input t in
  let config = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  let active = List.init 9 Fun.id in
  Test.make ~name:"counter/step d-counter n=9"
    (Staged.stage (fun () -> ignore (Engine.step p ~input config ~active)))

let bench_compile_run =
  let t = Stateless_compile.Compile.make (Circuit.parity 3) in
  let x = [| true; false; true |] in
  Test.make ~name:"compile/run parity3 ring"
    (Staged.stage (fun () -> ignore (Stateless_compile.Compile.run t x)))

let micro_tests =
  [
    bench_engine_step; bench_engine_stabilize; bench_checker;
    bench_circuit_eval; bench_bp_eval; bench_snake_search;
    bench_counter_step; bench_compile_run;
  ]

let run_micro_benchmarks () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "Micro-benchmarks (Bechamel, monotonic clock)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time_ns ] ->
              Printf.printf "  %-36s %12.1f ns/run\n" name time_ns
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    micro_tests

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  print_endline "Stateless Computation — experiment harness";
  print_endline "(Dolev, Erdmann, Lutz, Schapira, Zair; PODC 2017)";
  List.iter
    (fun (id, run) ->
      let start = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s completed in %.1fs]\n" id
        (Unix.gettimeofday () -. start))
    Experiments.all;
  List.iter
    (fun (id, run) ->
      let start = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s completed in %.1fs]\n" id
        (Unix.gettimeofday () -. start))
    Ablations.all;
  run_micro_benchmarks ();
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
