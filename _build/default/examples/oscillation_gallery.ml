(* A gallery of divergence: the paper's oscillating systems, rendered as
   ASCII time/space diagrams.

   Each panel shows node behaviour over time ('#' = 1, '.' = 0). The first
   two systems never settle because of Theorem 3.1 (two stable labelings +
   an adversarial-enough schedule); the last two can never settle at all
   (no stable labeling exists). *)

open Stateless_core
module Feedback = Stateless_games.Feedback
module Spp = Stateless_games.Spp

let () =
  (* 1. Example 1 under the (n-1)-fair chase schedule: the hot token is
        handed around the clique forever. *)
  let n = 6 in
  let p = Clique_example.make n in
  print_endline "== Example 1 on K_6, (n-1)-fair chase schedule ==";
  print_string
    (Render.node_bits_over_time p ~input:(Clique_example.input n)
       ~init:(Clique_example.oscillation_init p)
       ~schedule:(Clique_example.oscillation_schedule n)
       ~steps:14);

  (* ... and the same protocol under the synchronous schedule: converges in
     two steps. *)
  print_endline "\n== same protocol, synchronous schedule ==";
  print_string
    (Render.node_bits_over_time p ~input:(Clique_example.input n)
       ~init:(Clique_example.oscillation_init p)
       ~schedule:(Schedule.synchronous n) ~steps:4);

  (* 2. The coordination game on a ring under a 2-fair churn schedule found
        by the checker would look similar; here is its synchronous
        metastability on the NOR latch instead. *)
  let latch = Feedback.nor_latch () in
  print_endline "\n== NOR latch, R = S = 0, synchronous (metastability) ==";
  print_string
    (Render.node_bits_over_time latch ~input:[| false; false |]
       ~init:(Protocol.uniform_config latch false)
       ~schedule:(Schedule.synchronous 2) ~steps:6);

  (* 3. The ring oscillator: no stable labeling exists, it is a clock. *)
  let osc = Feedback.ring_oscillator 5 in
  print_endline "\n== 5-inverter ring oscillator, synchronous ==";
  print_string
    (Render.node_bits_over_time osc ~input:(Array.make 5 ())
       ~init:(Protocol.uniform_config osc false)
       ~schedule:(Schedule.synchronous 5) ~steps:12);

  (* 4. BAD GADGET: BGP route flapping, shown through node outputs (the
        rank of the currently selected route; 0 = best). *)
  let spp = Spp.bad_gadget () in
  let p = Spp.protocol spp in
  print_endline "\n== BAD GADGET: selected-route rank per AS, synchronous ==";
  print_string
    (Render.outputs_over_time p ~input:(Spp.input spp)
       ~init:(Protocol.uniform_config p [])
       ~schedule:(Schedule.synchronous spp.Spp.n)
       ~steps:8);

  (* 5. The D-counter's counter values, settling into a global clock. *)
  let t = Stateless_counter.D_counter.make ~n:5 ~d:8 () in
  let cp = Stateless_counter.D_counter.protocol t in
  print_endline "\n== D-counter (n=5, D=8): outputs = local clock views ==";
  print_string
    (Render.outputs_over_time cp
       ~input:(Stateless_counter.D_counter.input t)
       ~init:(Protocol.uniform_config cp (cp.Protocol.space.Label.decode 0))
       ~schedule:(Schedule.synchronous 5)
       ~steps:26)
