examples/ring_computer.ml: Array Engine Fun Label List Printf Protocol Random Schedule Stateless_bp Stateless_core Stateless_machine String
