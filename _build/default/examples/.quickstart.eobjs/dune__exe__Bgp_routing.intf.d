examples/bgp_routing.mli:
