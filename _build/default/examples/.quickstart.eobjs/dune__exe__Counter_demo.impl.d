examples/counter_demo.ml: Array Engine Fun Label List Printf Protocol Random Schedule Stateless_core Stateless_counter String
