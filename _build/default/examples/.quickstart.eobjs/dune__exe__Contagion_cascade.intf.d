examples/contagion_cascade.mli:
