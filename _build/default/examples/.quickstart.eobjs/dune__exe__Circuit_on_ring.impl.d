examples/circuit_on_ring.ml: Array List Printf Stateless_circuit Stateless_compile String
