examples/bgp_routing.ml: Array Engine List Printf Protocol Schedule Stability Stateless_checker Stateless_core Stateless_games Stateless_graph String
