examples/quickstart.ml: Array Clique_example Engine Fun Label List Printf Protocol Schedule Stability Stateless_checker Stateless_core
