examples/circuit_on_ring.mli:
