examples/ring_computer.mli:
