examples/oscillation_gallery.mli:
