examples/quickstart.mli:
