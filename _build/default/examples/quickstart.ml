(* Quickstart: define a stateless protocol, run it under a schedule, watch
   it self-stabilize, and model-check its fairness envelope.

   The protocol is the paper's Example 1 on the clique K_4: a node sends 1
   iff it heard a 1. Both all-zeros and all-ones are stable labelings, so
   Theorem 3.1 predicts that no (n-1)-fair schedule can be trusted — and the
   exhaustive checker confirms the boundary exactly. *)

open Stateless_core
module Checker = Stateless_checker.Checker

let () =
  let n = 4 in
  let p = Clique_example.make n in
  let input = Clique_example.input n in

  Printf.printf "Protocol %s: %d nodes, %d edges, label space of %d values\n"
    p.Protocol.name (Protocol.num_nodes p) (Protocol.num_edges p)
    p.Protocol.space.Label.card;

  (* 1. Synchronous run from the adversarial "one hot node" labeling. *)
  let init = Clique_example.oscillation_init p in
  (match
     Engine.run_until_stable p ~input ~init
       ~schedule:(Schedule.synchronous n) ~max_steps:100
   with
  | Engine.Stabilized { rounds; config } ->
      Printf.printf "Synchronous: stabilized after %d rounds to %s\n" rounds
        (if Array.for_all Fun.id config.Protocol.labels then "all-ones"
         else "all-zeros")
  | Engine.Oscillating _ -> print_endline "Synchronous: oscillating?!"
  | Engine.Exhausted _ -> print_endline "Synchronous: no verdict");

  (* 2. The paper's (n-1)-fair schedule chases the hot node forever. *)
  let sched = Clique_example.oscillation_schedule n in
  (match
     Engine.run_until_stable p ~input ~init ~schedule:sched ~max_steps:400
   with
  | Engine.Oscillating { period; _ } ->
      Printf.printf
        "Adversarial %d-fair schedule: oscillates with period %d\n" (n - 1)
        period
  | _ -> print_endline "Adversarial schedule: unexpectedly converged");

  (* 3. Exhaustive verification of the fairness boundary (Theorem 3.1 +
        Example 1 tightness): stabilizing for r <= n-2, not for n-1. *)
  List.iter
    (fun r ->
      match Checker.check_label p ~input ~r ~max_states:3_000_000 with
      | Checker.Stabilizing ->
          Printf.printf "r = %d: label r-stabilizing (exhaustive proof)\n" r
      | Checker.Oscillating w ->
          Printf.printf
            "r = %d: NOT stabilizing — cycle of %d steps from labeling #%d \
             (replayed: %b)\n"
            r
            (List.length w.Checker.cycle)
            w.Checker.init_code
            (Checker.replay p ~input w)
      | Checker.Too_large { needed } ->
          Printf.printf "r = %d: state space too large (%d states)\n" r needed)
    [ 1; 2; 3 ];

  (* 4. Stable labelings are exactly the two consensus configurations. *)
  Printf.printf "Stable labelings: %d\n"
    (Stability.count_stable_labelings p ~input)
