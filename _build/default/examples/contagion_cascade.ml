(* Diffusion of technologies in a social network (Morris's contagion, the
   paper's reference [23]) as stateless best-response dynamics.

   Agents adopt a technology iff at least half their neighbours did. We
   seed a corner of a grid community and watch the cascade; then we show
   the paper's dark side: all-adopt and none-adopt are both equilibria, so
   by Theorem 3.1 an adversarial (n-1)-fair scheduler can keep the network
   churning forever. *)

open Stateless_core
module Best_response = Stateless_games.Best_response
module Contagion = Stateless_games.Contagion
module Builders = Stateless_graph.Builders
module Checker = Stateless_checker.Checker

let show_grid rows cols adopters =
  for r = 0 to rows - 1 do
    print_string "  ";
    for c = 0 to cols - 1 do
      print_string (if List.mem ((r * cols) + c) adopters then "#" else ".")
    done;
    print_newline ()
  done

let () =
  let rows = 4 and cols = 5 in
  let g = Builders.grid rows cols in
  let game = Contagion.make g ~threshold:0.33 in
  let p = Best_response.protocol game () in
  let input = Best_response.input game in
  let seeds = [ 0; 1; cols; cols + 1 ] in

  Printf.printf "%dx%d community, adopt iff >= 1/3 of neighbours adopted\n"
    rows cols;
  print_endline "seeds:";
  show_grid rows cols seeds;

  let config = ref (Contagion.seeded_config p seeds) in
  let round = ref 0 in
  let stable = ref false in
  while (not !stable) && !round < 20 do
    incr round;
    let next =
      Engine.step p ~input !config
        ~active:(List.init (rows * cols) Fun.id)
    in
    if Contagion.adopters p next = Contagion.adopters p !config then
      stable := true;
    config := next
  done;
  Printf.printf "after %d rounds (%d adopters):\n" !round
    (List.length (Contagion.adopters p !config));
  show_grid rows cols (Contagion.adopters p !config);

  (* The instability corollary, verified exhaustively on a small ring. *)
  let small = Builders.ring_bi 3 in
  let small_game = Contagion.make small ~threshold:0.5 in
  let sp = Best_response.protocol small_game () in
  let sinput = Best_response.input small_game in
  Printf.printf
    "\n3-ring coordination: %d equilibria (stable labelings) -> Theorem 3.1 \
     forbids %d-stabilization\n"
    (Stability.count_stable_labelings sp ~input:sinput)
    2;
  match Checker.check_label sp ~input:sinput ~r:2 ~max_states:2_000_000 with
  | Checker.Oscillating w ->
      Printf.printf
        "checker: adversarial 2-fair schedule keeps the network churning \
         (cycle of %d activations, replayed: %b)\n"
        (List.length w.Checker.cycle)
        (Checker.replay sp ~input:sinput w)
  | Checker.Stabilizing -> print_endline "checker: stabilizing?!"
  | Checker.Too_large _ -> print_endline "checker: too large"
