(* Theorem 5.4 live: compile a Boolean circuit into a stateless protocol on
   a bidirectional ring and watch the ring compute the circuit — from a
   hostile random initial labeling — with logarithmic-size labels.

   The compiled protocol knows nothing globally: every node just maps its
   two incoming labels to outgoing labels. A distributed D-counter
   (Claim 5.6) built from a 2-counter (Claim 5.5) gives all nodes a common
   clock; gate values ride the clock's intervals and persist in stateless
   ping-pong memory cells. *)

module Circuit = Stateless_circuit.Circuit
module Compile = Stateless_compile.Compile

let show name t =
  Printf.printf
    "%s: |C| = %d gates -> ring of %d nodes, clock period D = %d, labels = \
     %d bits (paper: 6 + 3 log D), converges within %d rounds\n"
    name (Circuit.size t.Compile.circuit) t.Compile.ring_size
    t.Compile.clock_period (Compile.label_bits t) (Compile.convergence_bound t)

let truth_table name t =
  let n = t.Compile.circuit.Circuit.n_inputs in
  Printf.printf "  x -> ring output (vs circuit):\n";
  for code = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0) in
    let expect = Circuit.eval t.Compile.circuit x in
    let got =
      match Compile.run_from t x ~seed:(code + 1) with
      | Some v -> v
      | None -> failwith (name ^ ": did not converge")
    in
    Printf.printf "  %s -> %b (%b)%s\n"
      (String.concat ""
         (List.map (fun b -> if b then "1" else "0") (Array.to_list x)))
      got expect
      (if got = expect then "" else "  MISMATCH");
    assert (got = expect)
  done

let () =
  let maj = Compile.make (Circuit.majority 3) in
  show "majority-3" maj;
  truth_table "majority-3" maj;
  print_newline ();

  let eq = Compile.make (Circuit.equality 4) in
  show "equality-4" eq;
  truth_table "equality-4" eq;
  print_newline ();

  (* Scaling: the ring grows linearly with the circuit, the labels only
     logarithmically — the ĂOS^b_log regime of Theorem 5.4. *)
  print_endline "scaling parity-n:";
  List.iter
    (fun n ->
      let t = Compile.make (Circuit.parity n) in
      Printf.printf "  n=%2d  ring=%3d  D=%4d  label bits=%2d\n" n
        t.Compile.ring_size t.Compile.clock_period (Compile.label_bits t))
    [ 2; 4; 8; 16 ]
