(* Theorem 5.2 live: a space-bounded machine (with advice!) runs on a
   unidirectional ring of stateless nodes.

   Node 0 steps the machine once per label that reaches it; the node owning
   the input-head position stamps its bit into the passing token; a counter
   resets the simulation periodically so any initial garbage is flushed.
   On the synchronous ring, every edge carries an independent simulation
   token — n interleaved runs of the same machine, exactly as Appendix C
   describes. *)

open Stateless_core
module Machine = Stateless_machine.Machine
module Bp = Stateless_bp.Bp

let show_run name m x =
  let p = Machine.protocol_of_machine m in
  let n = m.Machine.n in
  (* Hostile start: random labels. *)
  let state = Random.State.make [| 99 |] in
  let card = p.Protocol.space.Label.card in
  let labels =
    Array.init (Protocol.num_edges p) (fun _ ->
        p.Protocol.space.Label.decode (Random.State.int state card))
  in
  let init = Protocol.config_of_labels p labels in
  match
    ( Engine.outputs_after_convergence p ~input:x ~init
        ~schedule:(Schedule.synchronous n)
        ~max_steps:(2 * Machine.convergence_bound m),
      Engine.output_stabilization_time p ~input:x ~init
        ~schedule:(Schedule.synchronous n)
        ~max_steps:(2 * Machine.convergence_bound m) )
  with
  | Some outs, Some time ->
      Printf.printf
        "%-14s x=%s  machine says %b, ring settles on %d after %d rounds \
         (bound %d, labels %d bits)\n"
        name
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list x)))
        (Machine.run m x) outs.(0) time
        (Machine.convergence_bound m)
        (Label.bit_length p.Protocol.space)
  | _ -> Printf.printf "%s: did not converge?!\n" name

let () =
  print_endline "Machines with advice on stateless unidirectional rings";
  print_endline "(Theorem 5.2, L/poly direction)\n";
  show_run "parity" (Machine.parity 5) [| true; false; true; true; false |];
  show_run "majority" (Machine.majority 4) [| true; true; false; true |];
  show_run "first=last" (Machine.first_equals_last 5)
    [| true; false; false; true; true |];
  (* Nonuniformity at work: the advice string is baked into the machine's
     transition table — a different "program" for every input length. *)
  let advice = [| false; true; true; false |] in
  show_run "advice-eq" (Machine.with_advice 4 advice) advice;
  show_run "advice-eq" (Machine.with_advice 4 advice)
    [| true; true; true; false |];

  (* The same theorem, through branching programs: BP -> ring -> BP. *)
  print_endline "\nBranching programs are ring protocols too (both ways):";
  let bp = Bp.reduce (Bp.of_function 4 (fun x -> x.(0) && x.(3))) in
  let p = Bp.protocol_of_bp bp in
  let bp' = Bp.of_uni_protocol p ~start:(p.Protocol.space.Label.decode 0) in
  Printf.printf
    "  x0 AND x3: reduced BP has %d nodes; its ring protocol uses %d-bit \
     labels;\n  unrolling the ring back into a BP gives %d nodes — same \
     function: %b\n"
    (Bp.size bp)
    (Label.bit_length p.Protocol.space)
    (Bp.size bp')
    (List.for_all
       (fun code ->
         let x = Array.init 4 (fun i -> code land (1 lsl i) <> 0) in
         Bp.eval bp x = Bp.eval bp' x)
       (List.init 16 Fun.id))
