(* The stateless global clock of Claims 5.5 and 5.6.

   No node stores anything, yet after a linear burn-in every node of the
   odd ring derives the same counter value every round, and the common
   value ticks 0, 1, 2, ..., D-1, 0, ... forever. We start from a random
   labeling (a transient fault wiping all state) and print the per-node
   views converging to a shared clock. *)

open Stateless_core
module Two_counter = Stateless_counter.Two_counter
module D_counter = Stateless_counter.D_counter

let () =
  let n = 7 and d = 10 in
  let t = D_counter.make ~n ~d () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in

  Printf.printf
    "D-counter on the %d-ring counting mod %d: %d label bits (paper: 2 + 3 \
     log D)\n\n" n d (D_counter.label_bits t);

  (* Random initial labeling = arbitrary transient fault. *)
  let state = Random.State.make [| 2026 |] in
  let card = p.Protocol.space.Label.card in
  let labels =
    Array.init (Protocol.num_edges p) (fun _ ->
        p.Protocol.space.Label.decode (Random.State.int state card))
  in
  let config = ref (Protocol.config_of_labels p labels) in
  let all = List.init n Fun.id in

  Printf.printf "round | per-node counter views          | agreed?\n";
  for round = 1 to D_counter.burn_in t + 6 do
    config := Engine.step p ~input !config ~active:all;
    if round <= 8 || round > D_counter.burn_in t then begin
      let vs = D_counter.values t !config in
      Printf.printf "%5d | %s | %s\n" round
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%2d") vs)))
        (if D_counter.agreed t !config then "yes" else "no")
    end
    else if round = 9 then print_endline "  ... (burn-in) ..."
  done;

  (* The 2-counter underneath: synchronized alternating phases. *)
  let tc = Two_counter.make n in
  let tp = tc.Two_counter.protocol in
  let tinput = Two_counter.input tc in
  let tconfig =
    ref
      (Engine.run tp ~input:tinput
         ~init:(Protocol.uniform_config tp (false, true))
         ~schedule:(Schedule.synchronous n)
         ~steps:(Two_counter.burn_in tc))
  in
  print_endline "\n2-counter phases after burn-in (all equal, alternating):";
  for _ = 1 to 4 do
    let ph = Two_counter.phases tc !tconfig in
    Printf.printf "  %s\n"
      (String.concat " "
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") ph)));
    tconfig := Engine.step tp ~input:tinput !tconfig ~active:all
  done
