(* BGP interdomain routing as stateless computation — the paper's motivating
   application (Section 1.1).

   We run the three canonical Stable Paths Problem gadgets as stateless
   protocols and connect their fate to the paper's theory:

   - GOOD GADGET: one solution; converges under every schedule we throw
     at it.
   - DISAGREE: two solutions = two stable labelings, so Theorem 3.1 rules
     out guaranteed convergence; the model checker extracts an explicit
     route-flapping activation schedule.
   - BAD GADGET: no solution at all; BGP route selection can never settle. *)

open Stateless_core
module Spp = Stateless_games.Spp
module Checker = Stateless_checker.Checker
module Digraph = Stateless_graph.Digraph

let pp_path p =
  if p = [] then "(no route)"
  else String.concat "->" (List.map string_of_int p)

let show_routes spp config =
  let p = Spp.protocol spp in
  for i = 1 to spp.Spp.n - 1 do
    let e = (Digraph.out_edges p.Protocol.graph i).(0) in
    Printf.printf "    AS%d selects %s\n" i
      (pp_path config.Protocol.labels.(e))
  done

let run_gadget name spp =
  Printf.printf "== %s ==\n" name;
  let solutions = Spp.solutions spp in
  Printf.printf "  SPP solutions: %d\n" (List.length solutions);
  let p = Spp.protocol spp in
  let input = Spp.input spp in
  let init = Protocol.uniform_config p [] in
  (match
     Engine.run_until_stable p ~input ~init
       ~schedule:(Schedule.synchronous spp.Spp.n)
       ~max_steps:2000
   with
  | Engine.Stabilized { rounds; config } ->
      Printf.printf "  synchronous BGP: converged in %d rounds\n" rounds;
      show_routes spp config
  | Engine.Oscillating { period; _ } ->
      Printf.printf "  synchronous BGP: route flapping (period %d)\n" period
  | Engine.Exhausted _ -> print_endline "  synchronous BGP: no verdict");
  (* A randomized 3-fair schedule, as a stand-in for real asynchrony. *)
  (match
     Engine.run_until_stable p ~input ~init
       ~schedule:(Schedule.random_fair ~seed:42 ~r:3 spp.Spp.n)
       ~max_steps:2000
   with
  | Engine.Stabilized { rounds; _ } ->
      Printf.printf "  random 3-fair schedule: converged in %d steps\n" rounds
  | Engine.Oscillating _ ->
      print_endline "  random 3-fair schedule: flapping"
  | Engine.Exhausted _ ->
      print_endline "  random 3-fair schedule: still flapping after 2000 steps");
  print_newline ()

let () =
  run_gadget "GOOD GADGET (unique solution)" (Spp.good_gadget ());
  run_gadget "DISAGREE (two solutions)" (Spp.disagree ());
  run_gadget "BAD GADGET (no solution)" (Spp.bad_gadget ());

  (* Theorem 3.1 applied to DISAGREE, with an exhaustive proof. *)
  let spp = Spp.disagree () in
  let p = Spp.protocol spp in
  let input = Spp.input spp in
  Printf.printf
    "DISAGREE has %d stable labelings; by Theorem 3.1 it cannot be label \
     %d-stabilizing.\n"
    (Stability.count_stable_labelings p ~input)
    (spp.Spp.n - 1);
  match Checker.check_label p ~input ~r:(spp.Spp.n - 1) ~max_states:3_000_000 with
  | Checker.Oscillating w ->
      Printf.printf
        "Checker agrees: a %d-fair flapping schedule exists (prefix %d + \
         cycle %d activations, replay ok: %b)\n"
        (spp.Spp.n - 1)
        (List.length w.Checker.prefix)
        (List.length w.Checker.cycle)
        (Checker.replay p ~input w)
  | Checker.Stabilizing -> print_endline "Checker disagrees?!"
  | Checker.Too_large { needed } ->
      Printf.printf "State space too large (%d)\n" needed
