let int_codec =
  { Campaign.encode = (fun i -> Value.Int i);
    decode = (function Value.Int i -> Some i | _ -> None) }

let cells execs n =
  Array.init n (fun i ->
      { Campaign.key = Printf.sprintf "j/c%d" i;
        config = Printf.sprintf "cfg%d" i;
        run = (fun ~deadline:_ ~attempt:_ -> incr execs; i * i) })

let () =
  let j = Filename.temp_file "torn2" ".jsonl" in
  let execs = ref 0 in
  let policy = { Campaign.default_policy with Campaign.journal = Some j } in
  ignore (Campaign.run ~policy ~codec:int_codec (cells execs 4));
  Printf.printf "pass1 execs=%d\n" !execs;
  (* tear the tail *)
  let ic = open_in_bin j in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin j in
  output_string oc (String.sub s 0 (String.length s - 10));
  close_out oc;
  let policy_r = { policy with Campaign.resume = true } in
  ignore (Campaign.run ~policy:policy_r ~codec:int_codec (cells execs 4));
  Printf.printf "pass2 (after tear) execs=%d (expect 5)\n" !execs;
  (* second resume, no crash in between: should replay everything, execute nothing *)
  let o3 = Campaign.run ~policy:policy_r ~codec:int_codec (cells execs 4) in
  Printf.printf "pass3 execs=%d (should still be 5) replayed=%d (should be 4)\n"
    !execs o3.Campaign.counts.Campaign.replayed;
  print_string "journal after pass2/3:\n";
  let ic = open_in_bin j in
  let len = in_channel_length ic in
  print_string (really_input_string ic len);
  close_in ic
