(* Command-line front end for the stateless-computation library.

   Subcommands:
     simulate  — run a built-in protocol under a chosen schedule
     check     — exhaustively decide label r-stabilization (Theorem 3.1 lab)
     snake     — search for snakes-in-the-box (Theorem 4.1's combinatorics)
     compile   — compile a circuit family member onto a ring (Theorem 5.4)
     counter   — run the stateless D-counter (Claim 5.6)
     spp       — run a Stable Paths Problem gadget (BGP motivation)
     faults    — corrupt steady states and measure recovery (Section 2.2)
     netlab    — adversarial channel campaigns and bounded-adversary
                 certification
     byz       — Byzantine-node attack campaigns and exhaustive (r,B)
                 certification
     sim       — event-driven continuous-time simulation on generated
                 topologies at up to millions of nodes
     campaign  — run the labs' sweeps as one crash-tolerant experiment
                 matrix with a resumable JSON-lines journal
     chaos     — storm the campaign machinery with seeded fault injection
                 and prove resume identity per lab
     fuzz      — cross-engine differential fuzzing with automatic
                 counterexample shrinking

   The campaign-capable subcommands (faults, netlab, byz, sim, campaign)
   share the robustness flags --journal / --resume / --cell-deadline /
   --retries. Exit codes: 0 success, 1 invariant violation (a fuzz
   divergence, a non-identical chaos resume, or a missed planted
   mutant), 2 journal locked by another campaign, 3 campaign completed
   but degraded (some cell retired as 'error'), 124 usage error, 125
   miscalibrated instance. *)

open Cmdliner
open Stateless_core
module Checker = Stateless_checker.Checker
module Symmetry = Stateless_checker.Symmetry
module Circuit = Stateless_circuit.Circuit
module Compile = Stateless_compile.Compile
module D_counter = Stateless_counter.D_counter
module Two_counter = Stateless_counter.Two_counter
module Snake = Stateless_snake.Snake
module Spp = Stateless_games.Spp
module Faultlab = Stateless_faultlab.Faultlab
module Netlab = Stateless_netlab.Netlab
module Netcheck = Stateless_netlab.Netcheck
module Byzlab = Stateless_byzlab.Byzlab
module Byzcheck = Stateless_byzlab.Byzcheck
module Simlab = Stateless_simlab.Simlab
module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value
module Chaoslab = Stateless_chaoslab.Chaoslab
module Fuzz = Stateless_chaoslab.Fuzz
module Fooling = Stateless_lowerbound.Fooling

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let nodes_arg =
  let doc = "Number of nodes." in
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~doc)

let steps_arg =
  let doc = "Maximum number of steps to simulate." in
  Arg.(value & opt int 10_000 & info [ "steps" ] ~doc)

(* Schedule specs are parsed at the Cmdliner layer so that a malformed
   '--schedule' is a usage error with a proper exit code, not an uncaught
   [Failure] backtrace. The grammar: sync | round-robin | random:R | chase
   with R a positive integer. *)
type sched_spec = Sync | Round_robin | Random_fair of int | Chase

let sched_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "sync" ] -> Ok Sync
    | [ "round-robin" ] -> Ok Round_robin
    | [ "random"; r ] -> (
        match int_of_string_opt r with
        | Some r when r >= 1 -> Ok (Random_fair r)
        | Some r ->
            Error
              (`Msg
                (Printf.sprintf
                   "fairness bound R must be at least 1 (got random:%d)" r))
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "invalid fairness bound %S in %S: expected 'random:R' \
                    with R a positive integer"
                   r s)))
    | [ "chase" ] -> Ok Chase
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown schedule %S: expected 'sync', 'round-robin', \
                'random:R' or 'chase'"
               s))
  in
  let print ppf = function
    | Sync -> Format.pp_print_string ppf "sync"
    | Round_robin -> Format.pp_print_string ppf "round-robin"
    | Random_fair r -> Format.fprintf ppf "random:%d" r
    | Chase -> Format.pp_print_string ppf "chase"
  in
  Arg.conv ~docv:"SCHEDULE" (parse, print)

let schedule_arg =
  let doc =
    "Schedule: 'sync', 'round-robin', 'random:R' (random R-fair, R a \
     positive integer), or 'chase' (Example 1's (n-1)-fair adversary)."
  in
  Arg.(value & opt sched_conv Sync & info [ "s"; "schedule" ] ~doc)

let schedule_of_spec spec n =
  match spec with
  | Sync -> Schedule.synchronous n
  | Round_robin -> Schedule.round_robin n
  | Random_fair r -> Schedule.random_fair ~seed:7 ~r n
  | Chase -> Clique_example.oscillation_schedule n

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let report_outcome = function
  | Engine.Stabilized { rounds; _ } ->
      Printf.printf "stabilized after %d steps\n" rounds
  | Engine.Oscillating { entered; period } ->
      Printf.printf "oscillates: enters a %d-step cycle at step %d\n" period
        entered
  | Engine.Exhausted _ -> print_endline "no verdict within the step budget"

let simulate_cmd =
  let protocol_arg =
    let doc =
      "Protocol: 'example1' (the clique protocol of Example 1), \
       'oscillator' (odd inverter ring), 'latch' (NOR latch, R=S=0)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("example1", `Example1); ("oscillator", `Oscillator);
               ("latch", `Latch);
             ])
          `Example1
      & info [ "p"; "protocol" ] ~doc)
  in
  let run protocol n spec steps =
    let n = max 2 n in
    match protocol with
    | `Example1 ->
        let p = Clique_example.make (max 3 n) in
        let n = max 3 n in
        let init = Clique_example.oscillation_init p in
        report_outcome
          (Engine.run_until_stable p ~input:(Clique_example.input n) ~init
             ~schedule:(schedule_of_spec spec n) ~max_steps:steps)
    | `Oscillator ->
        let p = Stateless_games.Feedback.ring_oscillator n in
        let init = Protocol.uniform_config p false in
        report_outcome
          (Engine.run_until_stable p ~input:(Array.make n ()) ~init
             ~schedule:(schedule_of_spec spec n) ~max_steps:steps)
    | `Latch ->
        let p = Stateless_games.Feedback.nor_latch () in
        let init = Protocol.uniform_config p false in
        report_outcome
          (Engine.run_until_stable p ~input:[| false; false |] ~init
             ~schedule:(schedule_of_spec spec 2) ~max_steps:steps)
  in
  let info =
    Cmd.info "simulate" ~doc:"Run a built-in protocol under a schedule"
  in
  Cmd.v info Term.(const run $ protocol_arg $ nodes_arg $ schedule_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let r_arg =
    let doc = "Fairness parameter r." in
    Arg.(value & opt int 2 & info [ "r" ] ~doc)
  in
  let budget_arg =
    let doc = "Maximum number of states to explore." in
    Arg.(value & opt int 5_000_000 & info [ "budget" ] ~doc)
  in
  let sym_arg =
    let doc =
      "Explore the quotient of the states-graph by the S_n node symmetry of \
       the clique (one representative per orbit) instead of the full graph. \
       Same verdict, up to n! fewer states."
    in
    Arg.(value & flag & info [ "sym" ] ~doc)
  in
  let run n r budget sym =
    let n = max 3 n in
    let p = Clique_example.make n in
    let input = Clique_example.input n in
    let symmetry =
      if sym then Some (Symmetry.clique p.Protocol.graph) else None
    in
    Printf.printf
      "Example 1 on K_%d (stable labelings: %d). Checking label \
       %d-stabilization%s...\n"
      n
      (Stability.count_stable_labelings p ~input)
      r
      (if sym then " modulo S_n" else "");
    (match Checker.check_label ?symmetry p ~input ~r ~max_states:budget with
    | Checker.Stabilizing ->
        print_endline "STABILIZING (all initial labelings, all r-fair \
                       schedules)"
    | Checker.Oscillating w ->
        Printf.printf
          "NOT STABILIZING: from labeling #%d play %d steps, then repeat a \
           %d-step cycle forever (replay check: %b)\n"
          w.Checker.init_code
          (List.length w.Checker.prefix)
          (List.length w.Checker.cycle)
          (Checker.replay p ~input w)
    | Checker.Too_large { needed } ->
        Printf.printf "state space too large: %d states (budget %d)\n" needed
          budget);
    match Checker.last_stats () with
    | Some s when sym ->
        Printf.printf "  [explored %d orbit representatives of %d states]\n"
          s.Checker.states s.Checker.full_states
    | _ -> ()
  in
  let info =
    Cmd.info "check"
      ~doc:"Exhaustively decide label r-stabilization of Example 1"
  in
  Cmd.v info Term.(const run $ nodes_arg $ r_arg $ budget_arg $ sym_arg)

(* ------------------------------------------------------------------ *)
(* snake                                                               *)
(* ------------------------------------------------------------------ *)

let snake_cmd =
  let d_arg =
    let doc = "Hypercube dimension." in
    Arg.(value & opt int 4 & info [ "d" ] ~doc)
  in
  let budget_arg =
    let doc = "Search-node budget." in
    Arg.(value & opt int 2_000_000 & info [ "budget" ] ~doc)
  in
  let run d budget =
    let snake, complete = Snake.search d ~node_budget:budget in
    Printf.printf "Q_%d: found an induced cycle of length %d (%s search)\n" d
      (List.length snake)
      (if complete then "exhaustive" else "budgeted");
    Printf.printf "  cycle: %s\n"
      (String.concat " " (List.map string_of_int snake));
    Printf.printf "  verified induced: %b\n" (Snake.is_induced_cycle d snake);
    if d <= 7 then
      Printf.printf "  best known s(%d) = %d\n" d (Snake.best_known d)
  in
  let info = Cmd.info "snake" ~doc:"Search for a snake-in-the-box" in
  Cmd.v info Term.(const run $ d_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let family_arg =
    let doc = "Circuit family: parity | majority | equality | and | or." in
    Arg.(
      value
      & opt
          (enum
             [
               ("parity", "parity"); ("majority", "majority");
               ("equality", "equality"); ("and", "and"); ("or", "or");
             ])
          "majority"
      & info [ "f"; "family" ] ~doc)
  in
  let input_arg =
    let doc = "Input bits, e.g. 101." in
    Arg.(value & opt string "101" & info [ "x"; "input" ] ~doc)
  in
  let run family input_str =
    let x =
      Array.of_seq
        (Seq.map (fun c -> c = '1') (String.to_seq input_str))
    in
    let n = Array.length x in
    let circuit =
      match family with
      | "parity" -> Circuit.parity n
      | "majority" -> Circuit.majority n
      | "equality" -> Circuit.equality n
      | "and" -> Circuit.and_all n
      | "or" -> Circuit.or_all n
      | _ -> assert false (* Arg.enum admits only the five above *)
    in
    let t = Compile.make circuit in
    Printf.printf
      "%s_%d: %d gates -> ring of %d nodes, clock D = %d, %d-bit labels\n"
      family n (Circuit.size circuit) t.Compile.ring_size t.Compile.clock_period
      (Compile.label_bits t);
    match Compile.run_from t x ~seed:1 with
    | Some v ->
        Printf.printf "ring output: %b (circuit: %b)\n" v (Circuit.eval circuit x)
    | None -> print_endline "did not converge (bug!)"
  in
  let info =
    Cmd.info "compile" ~doc:"Compile a circuit to a bidirectional ring"
  in
  Cmd.v info Term.(const run $ family_arg $ input_arg)

(* ------------------------------------------------------------------ *)
(* counter                                                             *)
(* ------------------------------------------------------------------ *)

let counter_cmd =
  let d_arg =
    let doc = "Counter modulus D." in
    Arg.(value & opt int 8 & info [ "d" ] ~doc)
  in
  let run n d =
    let n = if n mod 2 = 0 then n + 1 else n in
    let n = max 3 n in
    let t = D_counter.make ~n ~d () in
    let p = D_counter.protocol t in
    let input = D_counter.input t in
    let config =
      ref
        (Engine.run p ~input
           ~init:(Protocol.uniform_config p (p.Protocol.space.Label.decode 0))
           ~schedule:(Schedule.synchronous n)
           ~steps:(D_counter.burn_in t))
    in
    Printf.printf "D-counter, %d-ring mod %d (%d label bits), after burn-in:\n"
      n d (D_counter.label_bits t);
    for _ = 1 to 8 do
      config := Engine.step p ~input !config ~active:(List.init n Fun.id);
      let vs = D_counter.values t !config in
      Printf.printf "  %s  agreed=%b\n"
        (String.concat " " (Array.to_list (Array.map string_of_int vs)))
        (D_counter.agreed t !config)
    done
  in
  let info = Cmd.info "counter" ~doc:"Run the stateless D-counter" in
  Cmd.v info Term.(const run $ nodes_arg $ d_arg)

(* ------------------------------------------------------------------ *)
(* spp                                                                 *)
(* ------------------------------------------------------------------ *)

let spp_cmd =
  let gadget_arg =
    let doc = "Gadget: good | disagree | bad." in
    Arg.(
      value
      & opt (enum [ ("good", `Good); ("disagree", `Disagree); ("bad", `Bad) ])
          `Bad
      & info [ "g"; "gadget" ] ~doc)
  in
  let run gadget spec steps =
    let gadget_name, spp =
      match gadget with
      | `Good -> ("good", Spp.good_gadget ())
      | `Disagree -> ("disagree", Spp.disagree ())
      | `Bad -> ("bad", Spp.bad_gadget ())
    in
    let p = Spp.protocol spp in
    Printf.printf "%s gadget: %d SPP solutions\n" gadget_name
      (List.length (Spp.solutions spp));
    report_outcome
      (Engine.run_until_stable p ~input:(Spp.input spp)
         ~init:(Protocol.uniform_config p [])
         ~schedule:(schedule_of_spec spec spp.Spp.n)
         ~max_steps:steps)
  in
  let info = Cmd.info "spp" ~doc:"Run a Stable Paths Problem gadget" in
  Cmd.v info Term.(const run $ gadget_arg $ schedule_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* hunt                                                                *)
(* ------------------------------------------------------------------ *)

let hunt_cmd =
  let gadget_arg =
    let doc = "Target: disagree | bad | example1 | congestion." in
    Arg.(
      value
      & opt
          (enum
             [
               ("disagree", `Disagree); ("bad", `Bad);
               ("example1", `Example1); ("congestion", `Congestion);
             ])
          `Bad
      & info [ "t"; "target" ] ~doc)
  in
  let r_arg =
    let doc = "Fairness parameter r of the sampled schedules." in
    Arg.(value & opt int 3 & info [ "r" ] ~doc)
  in
  let attempts_arg =
    let doc = "Number of (labeling, schedule) samples." in
    Arg.(value & opt int 200 & info [ "attempts" ] ~doc)
  in
  let run target r attempts n =
    let report (type l) (p : (unit, l) Protocol.t) nn =
      let input = Array.make nn () in
      match
        Adversary.find_oscillation p ~input ~r ~attempts ~period:(3 * r)
          ~seed:11 ~max_steps:4000
      with
      | Some w ->
          Printf.printf
            "found a diverging %d-fair run: enters a %d-step cycle at step %d under schedule '%s' (verified: %b)\n"
            r w.Adversary.period w.Adversary.entered
            w.Adversary.schedule.Schedule.name
            (Adversary.verify p ~input w)
      | None ->
          Printf.printf
            "no oscillation found in %d samples (absence of evidence only)\n"
            attempts
    in
    match target with
    | `Disagree ->
        let spp = Spp.disagree () in
        report (Spp.protocol spp) spp.Spp.n
    | `Bad ->
        let spp = Spp.bad_gadget () in
        report (Spp.protocol spp) spp.Spp.n
    | `Example1 ->
        let n = max 3 n in
        report (Clique_example.make n) n
    | `Congestion ->
        let game =
          Stateless_games.Congestion.make ~flows:2 ~capacity:4 ~max_rate:4
        in
        report
          (Stateless_games.Best_response.protocol game ())
          2
  in
  let info =
    Cmd.info "hunt"
      ~doc:
        "Sample random r-fair periodic schedules hunting for a replayable          oscillation (for systems too large to check exhaustively)"
  in
  Cmd.v info Term.(const run $ gadget_arg $ r_arg $ attempts_arg $ nodes_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

(* Rates and counts are validated at the Cmdliner layer so malformed flags
   are usage errors, not backtraces. *)
let fraction_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some f ->
        Error (`Msg (Printf.sprintf "corruption fraction %g not in [0, 1]" f))
    | None -> Error (`Msg (Printf.sprintf "invalid fraction %S" s))
  in
  Arg.conv ~docv:"FRACTION" (parse, Format.pp_print_float)

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some k when k > 0 -> Ok k
    | Some k -> Error (`Msg (Printf.sprintf "%d is not a positive integer" k))
    | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let nonneg_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some k when k >= 0 -> Ok k
    | Some k -> Error (`Msg (Printf.sprintf "%d is negative" k))
    | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* Arguments shared verbatim by the faults/netlab/byz campaign commands;
   defined once so names, defaults and docs cannot drift apart. *)

let seed_arg =
  let doc =
    "First per-run seed: run $(i,i) of a sweep uses seed $(docv) + $(i,i). \
     Distinct values give statistically independent campaigns."
  in
  Arg.(value & opt pos_int_conv 1 & info [ "seed" ] ~doc ~docv:"S")

let domains_arg =
  let doc =
    "Spread runs across $(docv) domains. Results are bit-identical for \
     every value; only wall time changes."
  in
  Arg.(value & opt pos_int_conv 1 & info [ "domains" ] ~doc ~docv:"D")

let batch_arg =
  let doc =
    "Step campaign runs in lock-step blocks of $(docv) instances through \
     the batched SoA kernel. Results are bit-identical for every value; \
     only wall time changes."
  in
  Arg.(value & opt pos_int_conv 1 & info [ "batch" ] ~doc ~docv:"B")

let out_arg =
  let doc = "Also write the campaign as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc ~docv:"FILE")

(* Same flag everywhere; only the phase being abandoned differs. *)
let max_steps_arg ~doc =
  Arg.(
    value
    & opt pos_int_conv 10_000
    & info [ "max-steps"; "steps" ] ~doc ~docv:"K")

let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | Some f -> Error (`Msg (Printf.sprintf "%g is not positive" f))
    | None -> Error (`Msg (Printf.sprintf "invalid float %S" s))
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)

(* Robustness-policy flags shared by the campaign-capable subcommands
   (faults, netlab, byz, sim, campaign). *)
let policy_term =
  let journal_arg =
    let doc =
      "Stream each completed matrix cell to $(docv) as one JSON-lines \
       record (appended, flushed and fsync'd before the next cell), so a \
       killed campaign can be resumed with $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~doc ~docv:"FILE")
  in
  let resume_arg =
    let doc =
      "Replay the journal before running: completed cells whose config \
       fingerprint still matches are restored without re-execution, and \
       the merged output is byte-identical to an uninterrupted run. \
       Without this flag an existing journal is truncated."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Wall-clock budget per matrix cell, in seconds, polled \
       cooperatively inside the cell's own loop (no signals). An \
       over-budget cell is retired with a 'timeout' record and the \
       campaign still completes."
    in
    Arg.(
      value
      & opt (some pos_float_conv) None
      & info [ "cell-deadline" ] ~doc ~docv:"SEC")
  in
  let retries_arg =
    let doc =
      "Re-execute a crashed cell up to $(docv) extra times (reseeded per \
       attempt) before retiring it with a structured 'error' record."
    in
    Arg.(value & opt nonneg_int_conv 0 & info [ "retries" ] ~doc ~docv:"N")
  in
  let make journal resume cell_deadline retries =
    { Campaign.journal; resume; cell_deadline; retries }
  in
  Term.(const make $ journal_arg $ resume_arg $ deadline_arg $ retries_arg)

(* Sequential [run_matrix] legs sharing one journal: the first leg honors
   the user's resume choice (truncating any stale journal when --resume
   is absent); later legs must append to the same file, so they always
   resume. Cell keys are prefixed per lab and scenario, so a fresh leg
   never replays another leg's records. *)
let leg_policy (policy : Campaign.policy) first =
  if !first then (
    first := false;
    policy)
  else { policy with Campaign.resume = true }

let zero_counts = { Campaign.ok = 0; timeout = 0; error = 0; replayed = 0 }

let add_counts (a : Campaign.counts) (b : Campaign.counts) =
  {
    Campaign.ok = a.Campaign.ok + b.Campaign.ok;
    timeout = a.Campaign.timeout + b.Campaign.timeout;
    error = a.Campaign.error + b.Campaign.error;
    replayed = a.Campaign.replayed + b.Campaign.replayed;
  }

let cell_triple (c : Campaign.counts) =
  (c.Campaign.ok, c.Campaign.timeout, c.Campaign.error)

(* Silent on an all-ok fresh run, so default output is unchanged. *)
let report_counts (c : Campaign.counts) =
  if c.Campaign.timeout > 0 || c.Campaign.error > 0 || c.Campaign.replayed > 0
  then
    Printf.printf "  [cells: %d ok (%d replayed), %d timeout, %d error]\n"
      c.Campaign.ok c.Campaign.replayed c.Campaign.timeout c.Campaign.error

(* A campaign that completes but retires cells as 'error' (crashes that
   exhausted their retries) exits with a distinct code so scripts and CI
   can tell "degraded" (3) from success (0) without parsing stdout.
   Timeouts are a budget choice, not degradation, and keep exit 0. *)
let exit_degraded = 3

let degraded_exit (c : Campaign.counts) =
  if c.Campaign.error > 0 then exit exit_degraded

let faults_cmd =
  let scenario_arg =
    let doc =
      "Scenario: 'example1' (output re-stabilization on the clique), \
       'counter' (D-counter re-locking), 'oscillator' (ring oscillator \
       re-entering its orbit), or 'all'."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `All); ("example1", `Example1);
               ("counter", `Counter); ("oscillator", `Oscillator);
             ])
          `All
      & info [ "p"; "scenario" ] ~doc)
  in
  let fractions_arg =
    let doc =
      "Comma-separated corruption fractions, each in [0, 1]."
    in
    Arg.(
      value
      & opt (list fraction_conv) Faultlab.default_fractions
      & info [ "fractions" ] ~doc ~docv:"F1,F2,...")
  in
  let runs_arg =
    let doc = "Independent corruption runs (seeds) per fraction." in
    Arg.(value & opt pos_int_conv 20 & info [ "runs"; "seeds" ] ~doc ~docv:"N")
  in
  let max_steps_arg =
    max_steps_arg ~doc:"Give up on a run after $(docv) recovery steps."
  in
  let run scenario fractions runs max_steps domains seed0 batch policy out =
    let scenarios =
      match scenario with
      | `All -> Faultlab.default_scenarios ()
      | `Example1 -> [ Faultlab.example1 () ]
      | `Counter -> [ Faultlab.d_counter () ]
      | `Oscillator -> [ Faultlab.ring_oscillator () ]
    in
    let first = ref true in
    let counts = ref zero_counts in
    let campaigns =
      List.map
        (fun sc ->
          let c, k =
            Faultlab.run_matrix ~fractions ~seeds:runs ~max_steps ~domains
              ~seed0 ~batch ~policy:(leg_policy policy first) sc
          in
          counts := add_counts !counts k;
          c)
        scenarios
    in
    List.iter (Faultlab.print_campaign stdout) campaigns;
    report_counts !counts;
    (match out with
    | None -> ()
    | Some path ->
        Bench_json.to_file path (fun oc ->
            Faultlab.write_json
              ~host:(Bench_json.host ~domains ())
              ~cells:(cell_triple !counts) oc campaigns);
        Printf.printf "  [wrote %s]\n" path);
    degraded_exit !counts
  in
  let info =
    Cmd.info "faults"
      ~doc:
        "Corrupt steady states and measure recovery: mean/percentile/worst \
         recovery steps per corruption fraction"
  in
  Cmd.v info
    Term.(
      const run $ scenario_arg $ fractions_arg $ runs_arg $ max_steps_arg
      $ domains_arg $ seed_arg $ batch_arg $ policy_term $ out_arg)

(* ------------------------------------------------------------------ *)
(* netlab                                                              *)
(* ------------------------------------------------------------------ *)

let netlab_cmd =
  let scenario_arg =
    let doc =
      "Scenario: 'example1' (output degradation on the clique), 'counter' \
       (D-counter losing lock), or 'all'."
    in
    Arg.(
      value
      & opt
          (enum [ ("all", `All); ("example1", `Example1); ("counter", `Counter) ])
          `All
      & info [ "p"; "scenario" ] ~doc)
  in
  let rate name key =
    let doc = Printf.sprintf "Per-write/per-step %s probability in [0, 1]." name in
    Arg.(value & opt (some fraction_conv) None & info [ key ] ~doc ~docv:"F")
  in
  let loss_arg = rate "loss" "loss" in
  let delay_arg = rate "delay" "delay" in
  let dup_arg = rate "duplication (stale reread)" "dup" in
  let crash_arg = rate "crash" "crash" in
  let max_delay_arg =
    let doc = "Delayed writes land within $(docv) steps." in
    Arg.(value & opt pos_int_conv 4 & info [ "max-delay" ] ~doc ~docv:"D")
  in
  let crash_len_arg =
    let doc = "A crashed node stays silent for $(docv) steps." in
    Arg.(value & opt pos_int_conv 2 & info [ "crash-len" ] ~doc ~docv:"L")
  in
  let budget_arg =
    let doc = "Adversary fault budget per window (0 disables all faults)." in
    Arg.(value & opt nonneg_int_conv 4 & info [ "k"; "budget" ] ~doc ~docv:"K")
  in
  let window_arg =
    let doc = "Budget recharge window, in steps." in
    Arg.(value & opt pos_int_conv 8 & info [ "window" ] ~doc ~docv:"W")
  in
  let runs_arg =
    let doc = "Independent storms (seeds) per fault level." in
    Arg.(value & opt pos_int_conv 20 & info [ "runs"; "seeds" ] ~doc ~docv:"N")
  in
  let storm_arg =
    let doc = "Length of the fault storm, in steps." in
    Arg.(value & opt pos_int_conv 400 & info [ "storm" ] ~doc ~docv:"S")
  in
  let max_steps_arg =
    max_steps_arg ~doc:"Give up on post-storm recovery after $(docv) steps."
  in
  let run scenario loss delay dup crash max_delay crash_len k window runs storm
      max_steps domains seed0 batch policy out =
    let budget = { Netlab.k; window } in
    (* Any explicit rate flag selects a single custom level; otherwise run
       the default rising loss/delay sweep. *)
    let levels =
      match (loss, delay, dup, crash) with
      | None, None, None, None -> Netlab.default_levels
      | _ ->
          let get = Option.value ~default:0.0 in
          [
            Netlab.rates ~loss:(get loss) ~delay:(get delay) ~max_delay
              ~dup:(get dup) ~crash:(get crash) ~crash_len ();
          ]
    in
    let scenarios =
      match scenario with
      | `All -> Netlab.default_scenarios ()
      | `Example1 -> [ Netlab.example1 () ]
      | `Counter -> [ Netlab.d_counter () ]
    in
    let first = ref true in
    let counts = ref zero_counts in
    let campaigns =
      List.map
        (fun sc ->
          let c, cnt =
            Netlab.run_matrix ~levels ~seeds:runs ~storm ~max_steps ~domains
              ~seed0 ~batch ~policy:(leg_policy policy first) ~budget sc
          in
          counts := add_counts !counts cnt;
          c)
        scenarios
    in
    List.iter (Netlab.print_campaign stdout) campaigns;
    report_counts !counts;
    (match out with
    | None -> ()
    | Some path ->
        Bench_json.to_file path (fun oc ->
            Netlab.write_json
              ~host:(Bench_json.host ~domains ())
              ~cells:(cell_triple !counts) oc campaigns);
        Printf.printf "  [wrote %s]\n" path);
    degraded_exit !counts
  in
  let info =
    Cmd.info "netlab"
      ~doc:
        "Run protocols over adversarial channels (loss, delay, duplication, \
         crash-recover nodes) and measure output degradation and recovery"
  in
  Cmd.v info
    Term.(
      const run $ scenario_arg $ loss_arg $ delay_arg $ dup_arg $ crash_arg
      $ max_delay_arg $ crash_len_arg $ budget_arg $ window_arg $ runs_arg
      $ storm_arg $ max_steps_arg $ domains_arg $ seed_arg $ batch_arg
      $ policy_term $ out_arg)

(* ------------------------------------------------------------------ *)
(* byz                                                                 *)
(* ------------------------------------------------------------------ *)

let byz_cmd =
  let scenario_arg =
    let doc =
      "Scenario: 'example1' (output deviation on the clique), 'ring' (relay \
       ring, a containment worst case), 'counter' (D-counter losing lock), \
       or 'all'."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `All); ("example1", `Example1); ("ring", `Ring);
               ("counter", `Counter);
             ])
          `All
      & info [ "p"; "scenario" ] ~doc)
  in
  let byz_nodes_arg =
    let doc =
      "Comma-separated Byzantine node ids. Default: sweep the scenario's \
       built-in placements (campaign mode) or node 0 (--certify)."
    in
    Arg.(
      value
      & opt (some (list nonneg_int_conv)) None
      & info [ "byz-nodes" ] ~doc ~docv:"I,J,...")
  in
  let strategy_arg =
    let doc =
      "Attack strategy: 'random' (uniform labels from the seeded RNG) or \
       'anti-majority' (always write the rarest visible label)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("random", Byzlab.Seeded_random);
               ("anti-majority", Byzlab.Anti_majority);
             ])
          Byzlab.Seeded_random
      & info [ "strategy" ] ~doc)
  in
  let runs_arg =
    let doc = "Independent attacks (seeds) per Byzantine placement." in
    Arg.(value & opt pos_int_conv 20 & info [ "runs"; "seeds" ] ~doc ~docv:"N")
  in
  let attack_arg =
    let doc = "Length of the attack phase, in steps." in
    Arg.(value & opt pos_int_conv 400 & info [ "attack" ] ~doc ~docv:"A")
  in
  let max_steps_arg =
    max_steps_arg ~doc:"Give up on post-attack recovery after $(docv) steps."
  in
  let certify_arg =
    let doc =
      "Exhaustively certify (r,B)-stabilization instead of measuring runs: \
       decide whether every correct node stabilizes under every r-fair \
       schedule and every Byzantine behavior of the given nodes, and print \
       the per-node containment radius ('example1' only; use -n 3 for the \
       smallest instance)."
    in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let r_arg =
    let doc = "Fairness parameter r (--certify)." in
    Arg.(value & opt pos_int_conv 2 & info [ "r" ] ~doc)
  in
  let budget_arg =
    let doc = "Maximum number of states to explore (--certify)." in
    Arg.(value & opt pos_int_conv 5_000_000 & info [ "budget" ] ~doc)
  in
  let certify n byz r budget =
    let n = max 3 n in
    let p = Clique_example.make n in
    let input = Clique_example.input n in
    let byz = Option.value ~default:[ 0 ] byz in
    List.iter
      (fun j ->
        if j >= n then (
          Printf.eprintf "stateless: Byzantine node %d out of range for K_%d\n"
            j n;
          exit 124))
      byz;
    Printf.printf
      "Example 1 on K_%d, Byzantine nodes {%s}. Certifying correct-node \
       output %d-stabilization...\n"
      n
      (String.concat "," (List.map string_of_int byz))
      r;
    (match Byzcheck.check_output p ~input ~byz ~r ~max_states:budget with
    | Byzcheck.Stabilizing ->
        print_endline
          "STABILIZING (all initial labelings, all r-fair schedules, all \
           Byzantine behaviors)"
    | Byzcheck.Oscillating w ->
        Printf.printf
          "NOT STABILIZING: from labeling #%d play %d steps, then repeat a \
           %d-step cycle forever (replay: boxed %b, packed %b)\n"
          w.Byzcheck.init_code
          (List.length w.Byzcheck.prefix)
          (List.length w.Byzcheck.cycle)
          (Byzcheck.replay p ~input ~byz w)
          (Byzcheck.replay_packed p ~input ~byz w)
    | Byzcheck.Too_large { needed } ->
        Printf.printf "state space too large: %d states (budget %d)\n" needed
          budget);
    match Byzcheck.containment p ~input ~byz ~r ~max_states:budget with
    | Error needed ->
        Printf.printf "containment skipped: %d states (budget %d)\n" needed
          budget
    | Ok c ->
        Printf.printf
          "containment: %.0f%% of correct nodes stabilize; radius %s\n"
          (100.0 *. c.Byzcheck.stabilized_fraction)
          (match c.Byzcheck.radius with
          | None -> "none (fully contained)"
          | Some d -> string_of_int d);
        List.iter
          (fun f ->
            Printf.printf "  node %d (distance %d from B): %s\n"
              f.Byzcheck.node f.Byzcheck.distance
              (if f.Byzcheck.stabilizes then "stabilizes" else "diverges"))
          c.Byzcheck.fates
  in
  let campaign scenario byz strategy runs attack max_steps domains seed0 batch
      policy out =
    let scenarios =
      match scenario with
      | `All -> Byzlab.default_scenarios ()
      | `Example1 -> [ Byzlab.example1 () ]
      | `Ring -> [ Byzlab.relay_ring () ]
      | `Counter -> [ Byzlab.d_counter () ]
    in
    (match byz with
    | None -> ()
    | Some b ->
        List.iter
          (fun sc ->
            List.iter
              (fun j ->
                if j >= sc.Byzlab.nodes then (
                  Printf.eprintf
                    "stateless: Byzantine node %d out of range for %s (%d \
                     nodes)\n"
                    j sc.Byzlab.name sc.Byzlab.nodes;
                  exit 124))
              b)
          scenarios);
    (* An explicit placement is swept against the healthy baseline. *)
    let placements = Option.map (fun b -> [ []; b ]) byz in
    let first = ref true in
    let counts = ref zero_counts in
    let campaigns =
      List.map
        (fun sc ->
          let c, cnt =
            Byzlab.run_matrix ?placements ~seeds:runs ~attack ~max_steps
              ~domains ~seed0 ~batch ~policy:(leg_policy policy first)
              ~strategy sc
          in
          counts := add_counts !counts cnt;
          c)
        scenarios
    in
    List.iter (Byzlab.print_campaign stdout) campaigns;
    report_counts !counts;
    (match out with
    | None -> ()
    | Some path ->
        Bench_json.to_file path (fun oc ->
            Byzlab.write_json
              ~host:(Bench_json.host ~domains ())
              ~cells:(cell_triple !counts) oc campaigns);
        Printf.printf "  [wrote %s]\n" path);
    degraded_exit !counts
  in
  let run scenario n byz strategy runs attack max_steps domains seed0 batch
      certify_p r budget policy out =
    if certify_p then (
      (match scenario with
      | `All | `Example1 -> ()
      | `Ring | `Counter ->
          prerr_endline
            "stateless: --certify supports only the example1 scenario";
          exit 124);
      certify n byz r budget)
    else
      campaign scenario byz strategy runs attack max_steps domains seed0 batch
        policy out
  in
  let info =
    Cmd.info "byz"
      ~doc:
        "Byzantine-node attacks: sweep placements measuring deviation, \
         containment radius and recovery, or exhaustively certify \
         (r,B)-stabilization with --certify"
  in
  Cmd.v info
    Term.(
      const run $ scenario_arg $ nodes_arg $ byz_nodes_arg $ strategy_arg
      $ runs_arg $ attack_arg $ max_steps_arg $ domains_arg $ seed_arg
      $ batch_arg $ certify_arg $ r_arg $ budget_arg $ policy_term $ out_arg)

(* ------------------------------------------------------------------ *)
(* sim                                                                 *)
(* ------------------------------------------------------------------ *)

(* BENCH_sim-style JSON for a per-seed result table; shared by the sim
   and campaign subcommands. Cells that timed out or errored are absent
   from the "runs" array (their accounting is in the "cells" block). *)
let write_sim_json ~host ?cells ~(inst : Simlab.instance) ~rate ~latency
    ~horizon ~(faults : Eventsim.faults) oc
    (results : Simlab.result option array) =
  Bench_json.write ~benchmark:"sim" ~host ?cells oc (fun oc ->
      Printf.fprintf oc
        "  \"instance\": { \"scenario\": %S, \"topology\": %S, \"latency\": \
         %S, \"nodes\": %d, \"edges\": %d, \"rate\": %g, \"horizon\": %g, \
         \"loss\": %g, \"dup\": %g, \"crash\": %g },\n"
        (Simlab.scenario_name inst.Simlab.scenario)
        (Simlab.topology_name inst.Simlab.topology)
        (Simlab.latency_name latency) inst.Simlab.nodes inst.Simlab.edges rate
        horizon faults.Eventsim.loss faults.Eventsim.dup faults.Eventsim.crash;
      let rows = List.filter_map Fun.id (Array.to_list results) in
      let last = List.length rows - 1 in
      Printf.fprintf oc "  \"runs\": [\n";
      List.iteri
        (fun i (r : Simlab.result) ->
          Printf.fprintf oc
            "    { \"seed\": %d, \"events\": %d, \"activations\": %d, \
             \"deliveries\": %d, \"lost\": %d, \"duplicated\": %d, \
             \"crash_windows\": %d, \"metric\": %d, \"label_hash\": %d }%s\n"
            r.Simlab.seed r.Simlab.events r.Simlab.activations
            r.Simlab.deliveries r.Simlab.lost r.Simlab.duplicated
            r.Simlab.crash_windows r.Simlab.metric r.Simlab.label_hash
            (if i = last then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n")

let sim_cmd =
  let result_conv ~docv of_string name =
    Arg.conv ~docv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (of_string s)),
        fun ppf v -> Format.pp_print_string ppf (name v) )
  in
  let scenario_arg =
    let doc =
      "Scenario: 'contagion[:<threshold>:<seed-frac>]' (Morris threshold \
       contagion) or 'spp' (tiled Stable Paths Problem GOOD GADGETs)."
    in
    Arg.(
      value
      & opt
          (result_conv ~docv:"SCENARIO" Simlab.scenario_of_string
             Simlab.scenario_name)
          (Simlab.Contagion { threshold = 0.5; seed_frac = 0.01 })
      & info [ "p"; "scenario" ] ~doc)
  in
  let topology_arg =
    let doc =
      "Topology: 'ring', 'torus', 'er[:<deg>]', 'smallworld[:<k>:<beta>]' \
       or 'prefattach[:<m>]' ('spp' builds its own tiled graph and ignores \
       this)."
    in
    Arg.(
      value
      & opt
          (result_conv ~docv:"TOPO" Simlab.topology_of_string
             Simlab.topology_name)
          Simlab.Ring
      & info [ "t"; "topology" ] ~doc)
  in
  let latency_arg =
    let doc =
      "Per-edge delivery-latency distribution: 'const:<c>', \
       'uniform:<lo>:<hi>', 'exp:<mean>' or 'pareto:<alpha>:<xmin>'."
    in
    Arg.(
      value
      & opt
          (result_conv ~docv:"LAT" Simlab.latency_of_string
             Simlab.latency_name)
          (Eventsim.Exp 1.0)
      & info [ "latency" ] ~doc)
  in
  let sim_nodes_arg =
    let doc = "Network size (at least 4 nodes)." in
    Arg.(
      value & opt pos_int_conv 10_000 & info [ "n"; "nodes" ] ~doc ~docv:"N")
  in
  let rate_arg =
    let doc = "Per-node Poisson activation rate." in
    Arg.(value & opt pos_float_conv 1.0 & info [ "rate" ] ~doc ~docv:"R")
  in
  let horizon_arg =
    let doc = "Simulated-time horizon." in
    Arg.(value & opt pos_float_conv 50.0 & info [ "horizon" ] ~doc ~docv:"T")
  in
  let runs_arg =
    let doc = "Independent trajectories (seeds)." in
    Arg.(value & opt pos_int_conv 5 & info [ "runs"; "seeds" ] ~doc ~docv:"N")
  in
  let graph_seed_arg =
    let doc = "Seed for randomized topology generation." in
    Arg.(value & opt pos_int_conv 42 & info [ "graph-seed" ] ~doc ~docv:"S")
  in
  let loss_arg =
    let doc = "Per-message loss probability." in
    Arg.(value & opt fraction_conv 0.0 & info [ "loss" ] ~doc)
  in
  let dup_arg =
    let doc = "Per-message duplication probability." in
    Arg.(value & opt fraction_conv 0.0 & info [ "dup" ] ~doc)
  in
  let crash_arg =
    let doc = "Per-activation crash probability." in
    Arg.(value & opt fraction_conv 0.0 & info [ "crash" ] ~doc)
  in
  let crash_len_arg =
    let doc = "Length of each crash window, in simulated time." in
    Arg.(value & opt pos_float_conv 1.0 & info [ "crash-len" ] ~doc ~docv:"T")
  in
  let run scenario topology nodes rate latency horizon runs domains seed0
      graph_seed loss dup crash crash_len policy out =
    if nodes < 4 then (
      prerr_endline "stateless: sim needs at least 4 nodes";
      exit 124);
    let faults = { Eventsim.loss; dup; crash; crash_len } in
    let inst =
      Simlab.build scenario topology ~graph_seed ~nodes ~rate ~latency
        ~faults
    in
    Printf.printf
      "%s on %s: %d nodes, %d edges; rate %g, latency %s, horizon %g\n"
      (Simlab.scenario_name scenario)
      (Simlab.topology_name topology)
      inst.Simlab.nodes inst.Simlab.edges rate
      (Simlab.latency_name latency)
      horizon;
    let results, counts =
      Simlab.run_matrix ~domains ~policy inst ~seed0 ~runs ~horizon
    in
    Printf.printf "  %6s %10s %11s %10s %7s %6s %7s %10s  %s\n" "seed"
      "events" "activations" "deliveries" "lost" "dup" "crashes" "metric"
      "labels";
    Array.iteri
      (fun i -> function
        | Some r ->
            Printf.printf "  %6d %10d %11d %10d %7d %6d %7d %10d  %016x\n"
              r.Simlab.seed r.Simlab.events r.Simlab.activations
              r.Simlab.deliveries r.Simlab.lost r.Simlab.duplicated
              r.Simlab.crash_windows r.Simlab.metric r.Simlab.label_hash
        | None ->
            Printf.printf "  %6d  <no result: cell timed out or errored>\n"
              (seed0 + i))
      results;
    report_counts counts;
    (match out with
    | None -> ()
    | Some path ->
        Bench_json.to_file path (fun oc ->
            write_sim_json
              ~host:(Bench_json.host ~domains ())
              ~cells:(cell_triple counts) ~inst ~rate ~latency ~horizon
              ~faults oc results);
        Printf.printf "  [wrote %s]\n" path);
    degraded_exit counts
  in
  let info =
    Cmd.info "sim"
      ~doc:
        "Event-driven continuous-time simulation: Poisson activations and \
         per-edge latency distributions over generated topologies, at up \
         to millions of nodes"
  in
  Cmd.v info
    Term.(
      const run $ scenario_arg $ topology_arg $ sim_nodes_arg $ rate_arg
      $ latency_arg $ horizon_arg $ runs_arg $ domains_arg $ seed_arg
      $ graph_seed_arg $ loss_arg $ dup_arg $ crash_arg $ crash_len_arg
      $ policy_term $ out_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let leg_names =
    [ ("faults", `Faults); ("netlab", `Netlab); ("byz", `Byz); ("sim", `Sim) ]
  in
  let matrix_arg =
    let doc =
      "Legs of the experiment matrix to run: 'all' or a comma-separated \
       subset of 'faults', 'netlab', 'byz', 'sim'. Legs run sequentially \
       and share the journal."
    in
    let legs_conv =
      let parse s =
        if String.trim s = "all" then Ok (List.map snd leg_names)
        else
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | n :: rest -> (
                match List.assoc_opt (String.trim n) leg_names with
                | Some l when not (List.mem l acc) -> go (l :: acc) rest
                | Some _ ->
                    Error (`Msg (Printf.sprintf "duplicate matrix leg %S" n))
                | None ->
                    Error
                      (`Msg
                        (Printf.sprintf
                           "unknown matrix leg %S: expected 'faults', \
                            'netlab', 'byz', 'sim' or 'all'"
                           n)))
          in
          go [] (String.split_on_char ',' s)
      in
      let print ppf legs =
        Format.pp_print_string ppf
          (String.concat ","
             (List.map
                (fun l -> fst (List.find (fun (_, l') -> l' = l) leg_names))
                legs))
      in
      Arg.conv ~docv:"LEGS" (parse, print)
    in
    Arg.(value & opt legs_conv (List.map snd leg_names) & info [ "matrix" ] ~doc)
  in
  let runs_arg =
    let doc = "Independent runs (seeds) per matrix row." in
    Arg.(value & opt pos_int_conv 10 & info [ "runs"; "seeds" ] ~doc ~docv:"N")
  in
  let out_arg =
    let doc =
      "Write one BENCH-style JSON file per leg, as \
       $(docv)_faults.json, $(docv)_netlab.json, $(docv)_byz.json and \
       $(docv)_sim.json (each written atomically: temp file + rename)."
    in
    Arg.(
      value & opt (some string) None & info [ "o"; "out" ] ~doc ~docv:"PREFIX")
  in
  let run legs runs domains seed0 batch policy out =
    let first = ref true in
    let total = ref zero_counts in
    let write path emit =
      Bench_json.to_file path emit;
      Printf.printf "  [wrote %s]\n" path
    in
    let host = Bench_json.host ~domains () in
    List.iter
      (fun leg ->
        let counts = ref zero_counts in
        let matrix_leg run_one print_out write_out scenarios =
          let campaigns =
            List.map
              (fun sc ->
                let c, cnt = run_one (leg_policy policy first) sc in
                counts := add_counts !counts cnt;
                c)
              scenarios
          in
          List.iter print_out campaigns;
          Option.iter
            (fun prefix -> write_out prefix !counts campaigns)
            out
        in
        (match leg with
        | `Faults ->
            matrix_leg
              (fun policy sc ->
                Faultlab.run_matrix ~seeds:runs ~domains ~seed0 ~batch ~policy
                  sc)
              (Faultlab.print_campaign stdout)
              (fun prefix counts campaigns ->
                write (prefix ^ "_faults.json") (fun oc ->
                    Faultlab.write_json ~host ~cells:(cell_triple counts) oc
                      campaigns))
              (Faultlab.default_scenarios ())
        | `Netlab ->
            let budget = { Netlab.k = 4; window = 8 } in
            matrix_leg
              (fun policy sc ->
                Netlab.run_matrix ~seeds:runs ~domains ~seed0 ~batch ~policy
                  ~budget sc)
              (Netlab.print_campaign stdout)
              (fun prefix counts campaigns ->
                write (prefix ^ "_netlab.json") (fun oc ->
                    Netlab.write_json ~host ~cells:(cell_triple counts) oc
                      campaigns))
              (Netlab.default_scenarios ())
        | `Byz ->
            matrix_leg
              (fun policy sc ->
                Byzlab.run_matrix ~seeds:runs ~domains ~seed0 ~batch ~policy
                  ~strategy:Byzlab.Seeded_random sc)
              (Byzlab.print_campaign stdout)
              (fun prefix counts campaigns ->
                write (prefix ^ "_byz.json") (fun oc ->
                    Byzlab.write_json ~host ~cells:(cell_triple counts) oc
                      campaigns))
              (Byzlab.default_scenarios ())
        | `Sim ->
            let faults =
              { Eventsim.loss = 0.05; dup = 0.02; crash = 0.0; crash_len = 1.0 }
            in
            let rate = 1.0 and latency = Eventsim.Exp 1.0 and horizon = 20.0 in
            let inst =
              Simlab.build
                (Simlab.Contagion { threshold = 0.5; seed_frac = 0.01 })
                Simlab.Ring ~graph_seed:42 ~nodes:2000 ~rate ~latency ~faults
            in
            Printf.printf "sim leg: %s\n" inst.Simlab.desc;
            let results, cnt =
              Simlab.run_matrix ~domains ~policy:(leg_policy policy first)
                inst ~seed0 ~runs ~horizon
            in
            counts := add_counts !counts cnt;
            Array.iter
              (function
                | Some r ->
                    Printf.printf "  seed %d: %d events, metric %d\n"
                      r.Simlab.seed r.Simlab.events r.Simlab.metric
                | None -> ())
              results;
            Option.iter
              (fun prefix ->
                write (prefix ^ "_sim.json") (fun oc ->
                    write_sim_json ~host ~cells:(cell_triple !counts) ~inst
                      ~rate ~latency ~horizon ~faults oc results))
              out);
        total := add_counts !total !counts)
      legs;
    let c = !total in
    Printf.printf "campaign complete: %d ok (%d replayed), %d timeout, %d \
                   error\n"
      c.Campaign.ok c.Campaign.replayed c.Campaign.timeout c.Campaign.error;
    degraded_exit c
  in
  let info =
    Cmd.info "campaign"
      ~doc:
        "Run the labs' sweeps as one crash-tolerant experiment matrix: \
         cells stream to a resumable fsync'd JSON-lines journal, \
         over-deadline cells time out, crashed cells retry then degrade \
         to error records, and the campaign always completes"
  in
  Cmd.v info
    Term.(
      const run $ matrix_arg $ runs_arg $ domains_arg $ seed_arg $ batch_arg
      $ policy_term $ out_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let rounds_arg =
    let doc = "Storm rounds per lab leg before the clean resume." in
    Arg.(value & opt pos_int_conv 4 & info [ "rounds" ] ~doc ~docv:"N")
  in
  let chaos_domains_arg =
    let doc =
      "Domains for the stormed campaigns. The default 2 keeps the \
       domain-pool injection site live ($(b,--domains 1) runs inline and \
       bypasses the pool)."
    in
    Arg.(value & opt pos_int_conv 2 & info [ "domains" ] ~doc ~docv:"D")
  in
  let run seed rounds domains out =
    let reports = Chaoslab.run_storms ~domains ~rounds ~seed () in
    List.iter
      (fun (r : Chaoslab.leg_report) ->
        Printf.printf
          "chaos leg %-7s rounds %d  crashes %d  degraded %d  injections \
           %d  resume %s\n"
          r.Chaoslab.leg r.Chaoslab.rounds r.Chaoslab.crashes
          r.Chaoslab.degraded
          (Chaoslab.injected r.Chaoslab.injections)
          (if r.Chaoslab.identical then "identical" else "DIVERGED"))
      reports;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        List.iter
          (fun r ->
            output_string oc (Value.to_string (Chaoslab.report_to_value r));
            output_char oc '\n')
          reports;
        close_out oc;
        Printf.printf "  [wrote %s]\n" path);
    if List.exists (fun r -> not r.Chaoslab.identical) reports then begin
      prerr_endline
        "stateless: chaos storm broke resume identity (see report above)";
      exit 1
    end
  in
  let info =
    Cmd.info "chaos"
      ~doc:
        "Storm the campaign machinery with seeded fault injection — worker \
         crashes and stalls, torn/duplicated/dropped journal appends, short \
         reads, clock jumps — across all four lab codecs, then prove every \
         leg's clean resume merges identical to an uninterrupted reference \
         run (exit 1 if any leg diverges)"
  in
  Cmd.v info
    Term.(const run $ seed_arg $ rounds_arg $ chaos_domains_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let budget_arg =
    let doc = "Scenarios to generate and check." in
    Arg.(value & opt pos_int_conv 200 & info [ "budget" ] ~doc ~docv:"N")
  in
  let shrink_arg =
    let doc =
      "Shrink every divergence to a locally minimal witness before \
       reporting ($(b,--shrink=false) reports the raw scenario)."
    in
    Arg.(value & opt bool true & info [ "shrink" ] ~doc ~docv:"BOOL")
  in
  let mutant_conv =
    let parse s =
      match Fuzz.mutant_of_name s with
      | Some m -> Ok m
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown mutant %S (expected stale_read or dropped_write)"
                  s))
    in
    let print ppf m = Format.pp_print_string ppf (Fuzz.mutant_name m) in
    Arg.conv ~docv:"MUTANT" (parse, print)
  in
  let mutant_arg =
    let doc =
      "Plant a known-broken stepper ($(b,stale_read) or \
       $(b,dropped_write)) alongside the real engines to validate the \
       fuzzer: the run then succeeds only if the planted bug is found."
    in
    Arg.(value & opt (some mutant_conv) None & info [ "mutant" ] ~doc)
  in
  let run seed budget shrink mutant out =
    let report = Fuzz.run ?mutant ~shrink_found:shrink ~seed ~budget () in
    Printf.printf
      "fuzz: seed %d, %d scenarios, %d differential comparisons, %d \
       divergence(s), mean shrink ratio %.3f\n"
      report.Fuzz.seed report.Fuzz.tried report.Fuzz.comparisons
      (List.length report.Fuzz.found)
      report.Fuzz.mean_shrink_ratio;
    List.iter
      (fun (f : Fuzz.found) ->
        let d = f.Fuzz.shrunk in
        Printf.printf
          "  %s vs %s diverged at step %d (%s)\n    witness: %s\n"
          (fst d.Fuzz.pair) (snd d.Fuzz.pair) d.Fuzz.step d.Fuzz.detail
          (Value.to_string (Fuzz.witness_to_value ?mutant d)))
      report.Fuzz.found;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        let witnesses =
          List.map
            (fun (f : Fuzz.found) ->
              Fuzz.witness_to_value ?mutant f.Fuzz.shrunk)
            report.Fuzz.found
        in
        let v =
          Value.Obj
            [
              ("seed", Value.Int report.Fuzz.seed);
              ("budget", Value.Int report.Fuzz.budget);
              ("tried", Value.Int report.Fuzz.tried);
              ("comparisons", Value.Int report.Fuzz.comparisons);
              ("found", Value.Int (List.length report.Fuzz.found));
              ( "mean_shrink_ratio",
                Value.Float report.Fuzz.mean_shrink_ratio );
              ("witnesses", Value.List witnesses);
            ]
        in
        output_string oc (Value.to_string v);
        output_char oc '\n';
        close_out oc;
        Printf.printf "  [wrote %s]\n" path);
    match mutant with
    | None ->
        (* Clean mode: any divergence is a real cross-engine bug. *)
        if report.Fuzz.found <> [] then begin
          prerr_endline "stateless: engines diverged (see witnesses above)";
          exit 1
        end
    | Some m ->
        (* Validation mode: the planted bug must be found. *)
        if report.Fuzz.found = [] then begin
          Printf.eprintf
            "stateless: fuzzer missed the planted %s mutant in %d scenarios\n"
            (Fuzz.mutant_name m) budget;
          exit 1
        end
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Differentially fuzz the boxed engine against the packed kernel, \
         the batched SoA kernel, the synchronous event simulator, the \
         channel and Byzantine twins and the checker oracle on random \
         protocols × schedules × fault configs, shrinking any divergence \
         to a minimal replayable witness (exit 1 on divergence; with \
         $(b,--mutant), exit 1 if the planted bug is $(i,not) found)"
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ budget_arg $ shrink_arg $ mutant_arg $ out_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "stateless" ~version:"1.0.0"
      ~doc:"Stateless computation: simulation, verification, compilation"
  in
  (* Calibration and step-bound exceptions indicate a miscalibrated
     instance, not a crash: report them cleanly instead of a backtrace.
     ~catch:false hands term-evaluation exceptions to the handlers
     below (Cmdliner's default catch would swallow them first); the
     wildcard keeps exit 125 for genuinely unexpected ones. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [
              simulate_cmd; check_cmd; snake_cmd; compile_cmd; counter_cmd;
              spp_cmd; hunt_cmd; faults_cmd; netlab_cmd; byz_cmd; sim_cmd;
              campaign_cmd; chaos_cmd; fuzz_cmd;
            ])
     with
    | Snake.Step_bound_exhausted { reduction; d; max_steps } ->
        Printf.eprintf
          "stateless: %s reduction failed to settle for d = %d within %d \
           steps\n"
          reduction d max_steps;
        125
    | Two_counter.Calibration_failed { n; stage } ->
        Printf.eprintf
          "stateless: two-counter calibration failed at stage %s for n = %d\n"
          stage n;
        125
    | D_counter.Bad_geometry { n; d } ->
        Printf.eprintf
          "stateless: D-counter needs an odd ring n >= 3 and modulus d >= 2 \
           (got n = %d, d = %d)\n"
          n d;
        125
    | D_counter.Missing_ring_neighbour { node } ->
        Printf.eprintf
          "stateless: D-counter node %d lacks a ring neighbour (non-ring \
           graph)\n"
          node;
        125
    | Campaign.Journal_locked path ->
        Printf.eprintf
          "stateless: journal %s is locked by another running campaign \
           (two campaigns must not share a journal; wait or pick another \
           file)\n"
          path;
        2
    | Fooling.Empty_cut ->
        prerr_endline "stateless: fooling-set bound needs a non-empty cut";
        125
    | Fooling.Unsupported_size { fn; n } ->
        Printf.eprintf
          "stateless: no %s fooling set for n = %d\n" fn n;
        125
    | e ->
        Printf.eprintf "stateless: internal error, uncaught exception: %s\n"
          (Printexc.to_string e);
        125)
